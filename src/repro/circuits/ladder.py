"""Large-scale RC interconnect ladder — the sparse-backend scenario.

The paper's testbenches top out at a dozen MNA unknowns; production
sizing problems do not. This module opens a workload whose netlists have
*hundreds* of nodes — the regime the sparse linear-solver backend
(:mod:`repro.spice.backend`) exists for — while staying physically
meaningful: a driver charging a distributed RC interconnect, the
canonical on-chip wire model.

Two builders are provided:

* :func:`build_ladder_circuit` — an N-section RC ladder (series wire
  resistance per section, shunt wire capacitance per node) between a
  driver and a far-end load. Optionally width-tapered: section ``k``
  carries width ``w * taper^(k / N)``, the classic exponential-taper
  layout trade-off.
* :func:`build_amplifier_chain` — an N-stage ``gm``/``RC`` amplifier
  chain (VCCS stages) whose pole count grows with N; a second
  many-unknown topology for backend stress tests.

:class:`InterconnectLadderProblem` wraps the ladder as a two-fidelity
sizing :class:`~repro.problems.base.Problem`: choose the wire width, the
driver strength and the taper to minimize a switching-energy/area figure
of merit subject to far-end bandwidth and DC attenuation specs. The
**fidelity axis is the spatial discretization**: the coarse evaluation
lumps the wire into ``n_sections / lump_factor`` sections (same total R
and C, systematically optimistic ripple and delay), the fine evaluation
simulates the full ladder — cheap-and-biased vs. expensive-and-right,
the structure the paper's NARGP fusion exploits.
"""

from __future__ import annotations

import numpy as np

from ..design.space import DesignSpace, Variable
from ..problems.base import FIDELITY_HIGH, FIDELITY_LOW, Problem
from ..spice.ac import solve_ac
from ..spice.dc import ConvergenceError
from ..spice.elements import VCCS, Capacitor, Resistor, VoltageSource
from ..spice.netlist import Circuit

__all__ = [
    "build_ladder_circuit",
    "build_amplifier_chain",
    "simulate_ladder",
    "InterconnectLadderProblem",
]

#: Default section count of the high-fidelity ladder.
N_SECTIONS = 200
#: Coarse-fidelity lumping factor (sections merged per coarse section).
LUMP_FACTOR = 8
#: Wire sheet resistance per section at unit width (ohms).
R_SECTION = 40.0
#: Wire area capacitance per section at unit width (farads).
C_AREA = 12e-15
#: Width-independent fringe capacitance per section (farads).
C_FRINGE = 3e-15
#: Far-end receiver load (farads).
C_LOAD = 20e-15
#: Far-end resistive termination (ohms); also the DC path that keeps
#: the MNA system non-singular at omega = 0.
R_TERM = 50e3
#: Metrics reported when the solve fails (heavily infeasible).
FAILED_METRICS = {
    "bandwidth_mhz": 0.0,
    "dc_attenuation_db": -100.0,
    "wire_cap_pf": 100.0,
    "fom": 1e3,
}


def build_ladder_circuit(
    n_sections: int,
    width: float = 1.0,
    r_driver: float = 100.0,
    taper: float = 1.0,
    r_section: float = R_SECTION,
    c_area: float = C_AREA,
    c_fringe: float = C_FRINGE,
    c_load: float = C_LOAD,
    r_term: float = R_TERM,
) -> Circuit:
    """Build an N-section RC interconnect ladder.

    ``in -> Rdrv -> n1 -> R -> n2 -> ... -> n{N}`` with a shunt
    capacitor at every internal node and a ``c_load`` / ``r_term``
    receiver at the far end. The input source carries a unit AC
    excitation, so the far-end phasor is the wire transfer function —
    the resistive termination makes the DC attenuation a real function
    of the accumulated wire resistance. Section ``k`` (0-based) has
    width ``width * taper ** (k / n_sections)``: resistance scales
    inversely with width, area capacitance proportionally.
    """
    if n_sections < 1:
        raise ValueError("n_sections must be >= 1")
    if width <= 0 or r_driver <= 0:
        raise ValueError("width and r_driver must be positive")
    if taper <= 0:
        raise ValueError("taper must be positive")
    circuit = Circuit(f"rc-ladder-{n_sections}")
    circuit.add(VoltageSource("Vin", "in", "0", dc=1.0, ac=1.0))
    circuit.add(Resistor("Rdrv", "in", "n1", r_driver))
    for k in range(n_sections):
        node = f"n{k + 1}"
        w_k = width * taper ** (k / n_sections)
        circuit.add(Resistor(f"Rw{k + 1}", node, f"n{k + 2}", r_section / w_k))
        circuit.add(Capacitor(f"Cw{k + 1}", node, "0", c_area * w_k + c_fringe))
    far = f"n{n_sections + 1}"
    circuit.add(Capacitor("Cload", far, "0", c_load))
    circuit.add(Resistor("Rterm", far, "0", r_term))
    return circuit


def build_amplifier_chain(
    n_stages: int,
    gm: float = 1e-3,
    r_load: float = 2e3,
    c_load: float = 50e-15,
) -> Circuit:
    """Build an N-stage gm/RC amplifier chain.

    Each stage is a VCCS driving an RC load, DC-coupled into the next;
    the chain has ``n_stages`` poles and a per-stage DC gain of
    ``-gm * r_load``. Useful as a second many-node topology whose MNA
    structure differs from the pure ladder (controlled sources stamp
    unsymmetric blocks).
    """
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    circuit = Circuit(f"amp-chain-{n_stages}")
    circuit.add(VoltageSource("Vin", "s0", "0", dc=0.0, ac=1.0))
    for k in range(n_stages):
        n_in, n_out = f"s{k}", f"s{k + 1}"
        circuit.add(VCCS(f"G{k + 1}", n_out, "0", n_in, "0", gm))
        circuit.add(Resistor(f"R{k + 1}", n_out, "0", r_load))
        circuit.add(Capacitor(f"C{k + 1}", n_out, "0", c_load))
    return circuit


def simulate_ladder(
    width: float,
    r_driver: float,
    taper: float,
    fidelity: str,
    n_sections: int = N_SECTIONS,
    backend: str = "auto",
) -> dict:
    """Simulate one ladder design point and return its sizing metrics.

    The coarse fidelity lumps the wire into ``n_sections / LUMP_FACTOR``
    sections carrying the same total resistance and capacitance; the
    fine fidelity simulates all ``n_sections``. Metrics: far-end -3 dB
    ``bandwidth_mhz``, ``dc_attenuation_db`` at the first sweep point,
    total ``wire_cap_pf`` (the switching-energy proxy) and the ``fom``
    the optimizer minimizes.
    """
    if fidelity == FIDELITY_LOW:
        n_eff = max(2, n_sections // LUMP_FACTOR)
    else:
        n_eff = n_sections
    scale = n_sections / n_eff  # keep total wire R and C invariant
    circuit = build_ladder_circuit(
        n_eff,
        width=width,
        r_driver=r_driver,
        taper=taper,
        r_section=R_SECTION * scale,
        c_area=C_AREA * scale,
        c_fringe=C_FRINGE * scale,
    )
    far = f"n{n_eff + 1}"
    solution = solve_ac(circuit, 1e6, 1e11, points_per_decade=12, backend=backend)
    gain_db = solution.gain_db(far)
    dc_gain_db = float(gain_db[0])
    # -3 dB bandwidth relative to the DC level, log-interpolated
    below = np.flatnonzero(gain_db < dc_gain_db - 3.0)
    if below.size == 0:
        bandwidth_hz = float(solution.frequencies[-1])
    else:
        k = int(below[0])
        log_f = np.log10(solution.frequencies)
        drop = gain_db - (dc_gain_db - 3.0)
        slope = (drop[k] - drop[k - 1]) / (log_f[k] - log_f[k - 1])
        bandwidth_hz = float(10.0 ** (log_f[k - 1] - drop[k - 1] / slope))
    widths = width * taper ** (np.arange(n_eff) / n_eff)
    wire_cap = (
        float(np.sum(C_AREA * n_sections / n_eff * widths))
        + C_FRINGE * n_sections
    )
    # FOM: switching-energy proxy plus a driver-area proxy (stronger
    # drivers are bigger); both in comparable picounits.
    fom = wire_cap * 1e12 + 10.0 / (r_driver / 1e3)
    return {
        "bandwidth_mhz": bandwidth_hz / 1e6,
        "dc_attenuation_db": dc_gain_db,
        "wire_cap_pf": wire_cap * 1e12,
        "fom": float(fom),
    }


class InterconnectLadderProblem(Problem):
    """Interconnect sizing on the N-section RC ladder.

    ::

        minimize  FOM = wire capacitance (pF) + driver-area proxy
        s.t.      far-end bandwidth  > bw_min_mhz
                  DC attenuation    > att_min_db

    Design variables: wire ``width`` (relative to unit width, log),
    driver resistance ``r_driver`` (log) and the width ``taper`` ratio.
    Low fidelity lumps the wire 8x (systematically optimistic), high
    fidelity simulates the full ladder — the cost ratio matches the
    section counts.
    """

    name = "interconnect-ladder"
    failure_exceptions = (ConvergenceError, np.linalg.LinAlgError)

    def __init__(
        self,
        n_sections: int = N_SECTIONS,
        bw_min_mhz: float = 18.0,
        att_min_db: float = -1.5,
        backend: str = "auto",
    ):
        space = DesignSpace(
            [
                Variable("width", 0.2, 8.0, unit="x", log_scale=True),
                Variable("r_driver", 20.0, 2e3, unit="Ohm", log_scale=True),
                Variable("taper", 0.25, 1.5, unit="x", log_scale=True),
            ]
        )
        n_low = max(2, n_sections // LUMP_FACTOR)
        super().__init__(
            space=space,
            n_constraints=2,
            fidelities=(FIDELITY_LOW, FIDELITY_HIGH),
            costs={FIDELITY_LOW: n_low / n_sections, FIDELITY_HIGH: 1.0},
        )
        self.n_sections = int(n_sections)
        self.bw_min_mhz = float(bw_min_mhz)
        self.att_min_db = float(att_min_db)
        self.backend = backend

    def _evaluate(self, x, fidelity):
        width, r_driver, taper = (float(v) for v in x)
        metrics = simulate_ladder(
            width,
            r_driver,
            taper,
            fidelity,
            n_sections=self.n_sections,
            backend=self.backend,
        )
        return self._outcome_from_metrics(metrics)

    def _outcome_from_metrics(self, metrics):
        constraints = np.array(
            [
                self.bw_min_mhz - metrics["bandwidth_mhz"],
                self.att_min_db - metrics["dc_attenuation_db"],
            ]
        )
        return metrics["fom"], constraints, metrics

    def _failure_outcome(self, x, fidelity):
        # Same penalty outcome the simulator's in-line FAILED_METRICS
        # fallback used to produce, so trajectories are unchanged.
        return self._outcome_from_metrics(dict(FAILED_METRICS))
