"""Charge-pump testbench — the paper's second benchmark circuit (§5.2).

The paper sizes a SMIC 40 nm charge pump with **36 design variables**,
constraining the currents of the output transistors ``M1`` (up, PMOS)
and ``M2`` (down, NMOS) to a small window around 40 uA across **27 PVT
corners**; the low-fidelity simulation runs a single corner, the
high-fidelity one all 27 — a 27x cost ratio (325/27 + 146 ~ 158
equivalent simulations in Table 2).

Offline we replace the proprietary SMIC netlist with a *behavioral*
charge pump built from first-order square-law physics. The model keeps
every design degree of freedom of the real circuit:

* a beta-multiplier bias core (``MB1``/``MB2`` set the multiplication
  ratio ``K``; ``K`` also tunes the corner sensitivity of the bias
  current, the standard TC-nulling trick), mirrored through
  ``MB3``/``MB4``, with a startup device ``MB5`` and a bias cascode
  ``MB6``;
* an up path — PMOS mirror ``MPref``/``MPmir``, cascode ``MPcas``,
  switch ``MPsw`` — whose output current varies with the output voltage
  through channel-length modulation (reduced by the cascode), collapses
  near the compliance limit (switch + mirror headroom), and carries a
  charge-injection spike mitigated by dummies ``MD1``/``MD2``;
* a mirrored down path (``MNref``/``MNmir``/``MNcas``/``MNsw``,
  dummies ``MD3``/``MD4``);
* deterministic, corner-signed mismatch that shrinks with device area.

Each of the 18 devices exposes W and L: 36 variables, all of which move
the figure of merit. The objective/constraints follow eq. (15)/(16) of
the paper exactly.
"""

from __future__ import annotations

import numpy as np

from ..design.space import DesignSpace, Variable
from ..problems.base import FIDELITY_HIGH, FIDELITY_LOW, Problem
from ..spice.dc import ConvergenceError
from .pvt import N_CORNERS, Corner, all_corners, typical_corner

__all__ = ["ChargePumpProblem", "DEVICE_NAMES", "charge_pump_currents"]

#: Device order; variable 2*i is W of device i (um), 2*i+1 is L (um).
DEVICE_NAMES = (
    "MB1", "MB2", "MB3", "MB4", "MB5", "MB6",
    "MPref", "MPmir", "MPcas", "MPsw",
    "MNref", "MNmir", "MNcas", "MNsw",
    "MD1", "MD2", "MD3", "MD4",
)

#: Nominal process constants (typical corner).
KP_N = 300e-6   # A/V^2
KP_P = 120e-6
VTH = 0.35      # V (magnitude, both polarities)
VDD_NOMINAL = 1.1
BIAS_RESISTOR = 5e3  # ohms
TARGET_UA = 40.0
#: Output-voltage sweep resolution.
N_SWEEP = 9


def _ratio(w: float, l: float) -> float:
    return w / l


def charge_pump_currents(x: np.ndarray, corner: Corner) -> dict:
    """Behavioral electrical model: currents of M1/M2 vs output voltage.

    Parameters
    ----------
    x:
        Physical design vector of 36 entries, ``[W_0, L_0, W_1, L_1,
        ...]`` in micrometres, device order :data:`DEVICE_NAMES`.
    corner:
        PVT corner to evaluate.

    Returns
    -------
    dict with keys ``i_m1`` / ``i_m2`` (arrays over the output sweep,
    in uA) and ``i_bias`` (scalar, uA).
    """
    x = np.asarray(x, dtype=float).ravel()
    if x.size != 2 * len(DEVICE_NAMES):
        raise ValueError(f"expected {2 * len(DEVICE_NAMES)} variables")
    w = {name: x[2 * i] * 1e-6 for i, name in enumerate(DEVICE_NAMES)}
    l = {name: x[2 * i + 1] * 1e-6 for i, name in enumerate(DEVICE_NAMES)}
    s = {name: _ratio(w[name], l[name]) for name in DEVICE_NAMES}

    mob = corner.mobility_factor
    kp_n = KP_N * mob
    kp_p = KP_P * mob
    vth_n = VTH + corner.vth_shift
    vth_p = VTH + corner.vth_shift
    vdd = corner.vdd(VDD_NOMINAL)

    # ------------------------------------------------------------------
    # bias core: beta multiplier, I = 2 / (kp s R^2) (1 - 1/sqrt(K))^2
    # ------------------------------------------------------------------
    ratio_k = s["MB2"] / s["MB1"]
    if ratio_k <= 1.02:
        ratio_k = 1.02  # degenerate multiplier still starts up weakly
    # Nominal beta-multiplier current. The bias resistor's temperature
    # coefficient compensates the mobility law to first order (standard
    # constant-gm practice), so KP_N enters at its nominal value and the
    # *residual* corner sensitivity is modelled explicitly below.
    i_bias = (
        2.0 / (KP_N * s["MB1"] * BIAS_RESISTOR**2)
        * (1.0 - 1.0 / np.sqrt(ratio_k)) ** 2
    )
    # PMOS mirror inside the bias cell scales the current onwards.
    i_bias *= s["MB4"] / s["MB3"]

    # Residual corner sensitivity: smallest at the TC-null multiplication
    # ratio K ~ 4, growing quadratically away from it; supply feedthrough
    # is suppressed by a strong bias cascode (MB6).
    k_null = 4.0
    sens = 0.05 + 0.95 * min(1.0, 4.0 * (ratio_k / k_null - 1.0) ** 2)
    vdd_sens = 0.5 / (1.0 + s["MB6"] / 5.0)
    raw_shift = (1.0 / mob - 1.0) + vdd_sens * (corner.vdd_factor - 1.0)
    i_bias *= 1.0 + sens * raw_shift
    # Oversized startup device leaks into the bias node.
    i_bias += 0.2e-6 * max(0.0, s["MB5"] - 2.0)

    # ------------------------------------------------------------------
    # output sweep
    # ------------------------------------------------------------------
    v_out = np.linspace(0.15, vdd - 0.15, N_SWEEP)

    def path_current(prefix: str, kp: float, vth: float, is_up: bool):
        mirror_ratio = s[f"{prefix}mir"] / s[f"{prefix}ref"]
        i_nom = i_bias * mirror_ratio
        i_nom = max(i_nom, 1e-9)
        # channel-length modulation, attenuated by the cascode
        lambda_clm = 0.02e-6 / max(l[f"{prefix}mir"], 1e-8)
        cascode_gain = 1.0 + 0.6 * np.sqrt(s[f"{prefix}cas"])
        lambda_eff = lambda_clm / cascode_gain
        # knee voltage: mirror + cascode saturation plus the switch drop
        vdsat_mir = np.sqrt(2.0 * i_nom / (kp * s[f"{prefix}mir"]))
        vdsat_cas = np.sqrt(2.0 * i_nom / (kp * s[f"{prefix}cas"]))
        vov_sw = max(vdd - vth, 0.05)
        v_sw = i_nom / (kp * s[f"{prefix}sw"] * vov_sw)
        v_knee = vdsat_mir + vdsat_cas + v_sw
        # headroom seen by the current branch at each output voltage
        headroom = (vdd - v_out) if is_up else v_out
        excess = headroom - v_knee
        saturated = i_nom * (1.0 + lambda_eff * np.maximum(excess, 0.0))
        # below the knee the branch behaves like a triode resistor:
        # quadratic roll-off, C1-continuous at the knee
        frac = np.clip(headroom / max(v_knee, 1e-6), 0.0, 1.0)
        triode = i_nom * frac * (2.0 - frac)
        current = np.where(excess >= 0.0, saturated, triode)
        return current, i_nom

    i_up, i_up_nom = path_current("MP", kp_p, vth_p, is_up=True)
    i_dn, i_dn_nom = path_current("MN", kp_n, vth_n, is_up=False)

    # ------------------------------------------------------------------
    # charge injection spikes (switches), mitigated by the dummies
    # ------------------------------------------------------------------
    def injection(sw_name: str, dummy_a: str, dummy_b: str) -> float:
        dummy_ratio = (s[dummy_a] + s[dummy_b]) / max(s[sw_name], 1e-9)
        mitigation = 1.0 + 2.0 * min(dummy_ratio, 1.5)
        return (
            0.4e-6 * np.sqrt(s[sw_name]) * (1.0 + 0.3 * corner.skew)
            / mitigation
        )

    inj_up = injection("MPsw", "MD1", "MD2")
    inj_dn = injection("MNsw", "MD3", "MD4")

    # ------------------------------------------------------------------
    # deterministic corner-signed mismatch, shrinking with device area
    # ------------------------------------------------------------------
    def mismatch(mir: str, ref: str, dummy_a: str, dummy_b: str) -> float:
        area_um2 = (
            w[mir] * l[mir] + w[ref] * l[ref]
            + 0.5 * (w[dummy_a] * l[dummy_a] + w[dummy_b] * l[dummy_b])
        ) * 1e12
        return 2.0e-6 * corner.skew / np.sqrt(max(area_um2, 1e-3))

    i_m1 = i_up + mismatch("MPmir", "MPref", "MD1", "MD2")
    i_m2 = i_dn - mismatch("MNmir", "MNref", "MD3", "MD4")
    # injection raises the instantaneous peak current
    i_m1_peaked = i_m1 + inj_up
    i_m2_peaked = i_m2 + inj_dn

    return {
        "i_m1": i_m1 * 1e6,
        "i_m1_peak": i_m1_peaked * 1e6,
        "i_m2": i_m2 * 1e6,
        "i_m2_peak": i_m2_peaked * 1e6,
        "i_bias": i_bias * 1e6,
        "i_up_nom": i_up_nom * 1e6,
        "i_dn_nom": i_dn_nom * 1e6,
    }


def _corner_statistics(x: np.ndarray, corners: list[Corner]) -> dict:
    """The eq. (16) statistics over a set of corners (everything in uA)."""
    diff1 = diff2 = diff3 = diff4 = -np.inf
    dev_m1 = dev_m2 = -np.inf
    for corner in corners:
        currents = charge_pump_currents(x, corner)
        m1_avg = float(np.mean(currents["i_m1"]))
        m1_max = float(np.max(currents["i_m1_peak"]))
        m1_min = float(np.min(currents["i_m1"]))
        m2_avg = float(np.mean(currents["i_m2"]))
        m2_max = float(np.max(currents["i_m2_peak"]))
        m2_min = float(np.min(currents["i_m2"]))
        diff1 = max(diff1, m1_max - m1_avg)
        diff2 = max(diff2, m1_avg - m1_min)
        diff3 = max(diff3, m2_max - m2_avg)
        diff4 = max(diff4, m2_avg - m2_min)
        dev_m1 = max(dev_m1, abs(m1_avg - TARGET_UA))
        dev_m2 = max(dev_m2, abs(m2_avg - TARGET_UA))
    deviation = dev_m1 + dev_m2
    fom = 0.3 * (diff1 + diff2 + diff3 + diff4) + 0.5 * deviation
    return {
        "max_diff1": diff1,
        "max_diff2": diff2,
        "max_diff3": diff3,
        "max_diff4": diff4,
        "deviation": deviation,
        "FOM": fom,
    }


class ChargePumpProblem(Problem):
    """The §5.2 optimization problem (eq. 15/16).

    ::

        minimize  FOM = 0.3 * sum(max_diff_i) + 0.5 * deviation
        s.t.      max_diff1 < 20 uA     max_diff2 < 20 uA
                  max_diff3 < 5 uA      max_diff4 < 5 uA
                  deviation < 5 uA

    36 design variables: W in [0.5, 40] um and L in [0.05, 1] um for each
    of the 18 devices (log-scaled). High fidelity evaluates all 27 PVT
    corners, low fidelity the typical corner only; the cost ratio is 27x.
    """

    name = "charge-pump"
    failure_exceptions = (ConvergenceError, np.linalg.LinAlgError)

    #: eq. (15) thresholds in uA.
    LIMITS = (20.0, 20.0, 5.0, 5.0, 5.0)

    #: Corner statistics reported when the analytic corner evaluation
    #: cannot complete: every current mismatch pegged far above the
    #: eq. (15) limits so the failure is heavily infeasible.
    FAILED_STATS = {
        "FOM": 1e3,
        "max_diff1": 1e3,
        "max_diff2": 1e3,
        "max_diff3": 1e3,
        "max_diff4": 1e3,
        "deviation": 1e3,
    }

    def __init__(self):
        variables = []
        for name in DEVICE_NAMES:
            variables.append(
                Variable(f"W_{name}", 0.5, 40.0, unit="um", log_scale=True)
            )
            variables.append(
                Variable(f"L_{name}", 0.05, 1.0, unit="um", log_scale=True)
            )
        super().__init__(
            space=DesignSpace(variables),
            n_constraints=5,
            fidelities=(FIDELITY_LOW, FIDELITY_HIGH),
            costs={FIDELITY_LOW: 1.0 / N_CORNERS, FIDELITY_HIGH: 1.0},
        )
        self._all_corners = all_corners()
        self._typical = [typical_corner()]

    def _evaluate(self, x, fidelity):
        corners = (
            self._typical if fidelity == FIDELITY_LOW else self._all_corners
        )
        stats = _corner_statistics(x, corners)
        return self._outcome_from_stats(stats)

    def _outcome_from_stats(self, stats):
        constraints = np.array(
            [
                stats["max_diff1"] - self.LIMITS[0],
                stats["max_diff2"] - self.LIMITS[1],
                stats["max_diff3"] - self.LIMITS[2],
                stats["max_diff4"] - self.LIMITS[3],
                stats["deviation"] - self.LIMITS[4],
            ]
        )
        return stats["FOM"], constraints, stats

    def _failure_outcome(self, x, fidelity):
        return self._outcome_from_stats(dict(self.FAILED_STATS))
