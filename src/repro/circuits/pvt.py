"""Process/Voltage/Temperature corner model.

The charge-pump experiment of the paper (§5.2) simulates "a total of 27
PVT corners" at high fidelity and "only a single PVT corner" at low
fidelity. This module provides that corner grid: 3 process corners
(slow/typical/fast) x 3 supply voltages (-10% / nominal / +10%) x 3
temperatures (-40C / 27C / 125C).

The process corner shifts threshold voltages and carrier mobility;
temperature applies the usual ``(T/300K)^-1.5`` mobility law and a
-2 mV/K threshold drift. These first-order laws are what the behavioral
charge-pump model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Corner", "all_corners", "typical_corner", "N_CORNERS"]

_PROCESS_NAMES = ("ss", "tt", "ff")
_VDD_FACTORS = (0.9, 1.0, 1.1)
_TEMPERATURES_C = (-40.0, 27.0, 125.0)

#: Threshold shift per process corner (V); slow = higher |Vth|.
_VTH_SHIFT = {"ss": +0.03, "tt": 0.0, "ff": -0.03}
#: Mobility multiplier per process corner.
_MOBILITY_FACTOR = {"ss": 0.95, "tt": 1.0, "ff": 1.05}

N_CORNERS = len(_PROCESS_NAMES) * len(_VDD_FACTORS) * len(_TEMPERATURES_C)


@dataclass(frozen=True)
class Corner:
    """One PVT corner with derived device-parameter scalings."""

    process: str
    vdd_factor: float
    temperature_c: float

    def __post_init__(self):
        if self.process not in _PROCESS_NAMES:
            raise ValueError(f"unknown process corner {self.process!r}")

    @property
    def name(self) -> str:
        return f"{self.process}/{self.vdd_factor:g}V/{self.temperature_c:g}C"

    @property
    def is_typical(self) -> bool:
        return (
            self.process == "tt"
            and self.vdd_factor == 1.0
            and self.temperature_c == 27.0
        )

    # ------------------------------------------------------------------
    # derived device-parameter scalings
    # ------------------------------------------------------------------
    @property
    def vth_shift(self) -> float:
        """Threshold shift in volts (process + temperature)."""
        dt = self.temperature_c - 27.0
        return _VTH_SHIFT[self.process] - 2e-3 * dt

    @property
    def mobility_factor(self) -> float:
        """Mobility multiplier (process + ``T^-1.5`` temperature law)."""
        t_kelvin = self.temperature_c + 273.15
        return _MOBILITY_FACTOR[self.process] * (t_kelvin / 300.15) ** -1.5

    def vdd(self, nominal: float) -> float:
        """Actual supply at this corner."""
        return nominal * self.vdd_factor

    @property
    def skew(self) -> float:
        """Signed corner skew in [-1, 1] used for mismatch polarity.

        Slow corners give negative skew, fast positive; voltage and
        temperature contribute fractionally. Deterministic by design so
        repeated evaluations agree exactly.
        """
        process_skew = {"ss": -1.0, "tt": 0.0, "ff": 1.0}[self.process]
        v_skew = (self.vdd_factor - 1.0) / 0.1
        t_skew = (self.temperature_c - 27.0) / 98.0
        return float(np.clip(0.6 * process_skew + 0.25 * v_skew + 0.15 * t_skew,
                             -1.0, 1.0))


def all_corners() -> list[Corner]:
    """The full 3 x 3 x 3 = 27 corner grid, typical corner first."""
    corners = [
        Corner(p, v, t)
        for p in _PROCESS_NAMES
        for v in _VDD_FACTORS
        for t in _TEMPERATURES_C
    ]
    corners.sort(key=lambda c: not c.is_typical)
    return corners


def typical_corner() -> Corner:
    """The tt / nominal-VDD / 27C corner used by the low fidelity."""
    return Corner("tt", 1.0, 27.0)
