"""Multi-objective extensions of the :class:`repro.problems.Problem` API.

Analog sizing is intrinsically multi-objective — the paper's testbenches
trade power against gain/UGF/PM (op-amp) and efficiency against output
power (PA) but scalarize at the problem boundary. This module keeps the
single-objective :class:`Problem` untouched and adds a parallel
abstraction:

* :class:`MultiObjectiveEvaluation` extends :class:`Evaluation` with a
  vector of ``objectives`` (all minimized; maximization objectives are
  negated at this boundary, exactly like the scalar convention). The
  scalar ``objective`` field holds the **primary** objective
  (``objectives[0]``), so cost accounting, histories and the
  single-objective reporting tools keep working on mixed records.
* :class:`MultiObjectiveProblem` declares ``n_objectives`` /
  ``objective_names`` and routes evaluation through the
  ``_evaluate_multi`` hook returning ``(objectives, constraints,
  metrics)``.
* :class:`ZDT1Problem` — a two-fidelity variant of the classic ZDT1
  bi-objective benchmark, the synthetic testbed for the multi-objective
  optimizer and its property tests.

Constraint semantics are shared with the scalar API: ``c_i <= 0`` is
feasible, and :class:`repro.moo.ParetoArchive` applies
constrained-domination on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..design.space import DesignSpace, Variable
from .base import (
    FIDELITY_HIGH,
    FIDELITY_LOW,
    Evaluation,
    FailedEvaluation,
    Problem,
    _plain,
)

__all__ = [
    "MultiObjectiveEvaluation",
    "FailedMultiObjectiveEvaluation",
    "MultiObjectiveProblem",
    "ZDT1Problem",
]


@dataclass(frozen=True)
class MultiObjectiveEvaluation(Evaluation):
    """Result of one evaluation of a :class:`MultiObjectiveProblem`.

    Attributes
    ----------
    objectives:
        Vector of objective values, all minimized. ``objectives[0]`` is
        duplicated into the scalar :attr:`Evaluation.objective` field
        (the *primary* objective) so single-objective tooling — history
        incumbents, :class:`repro.core.BOResult` — stays meaningful on
        multi-objective records.
    """

    objectives: np.ndarray = field(default_factory=lambda: np.empty(0))

    def to_dict(self) -> dict:
        """JSON payload; the extra ``objectives`` key triggers the
        :meth:`Evaluation.from_dict` dispatch back to this class."""
        payload = super().to_dict()
        payload["objectives"] = [float(v) for v in self.objectives]
        return payload

    @classmethod
    def _kwargs_from(cls, payload: dict) -> dict:
        kwargs = super()._kwargs_from(payload)
        kwargs["objectives"] = np.asarray(payload["objectives"], dtype=float)
        return kwargs


@dataclass(frozen=True)
class FailedMultiObjectiveEvaluation(FailedEvaluation, MultiObjectiveEvaluation):
    """A failed evaluation of a :class:`MultiObjectiveProblem`.

    Combines the failure metadata of
    :class:`repro.problems.FailedEvaluation` with the ``objectives``
    vector of :class:`MultiObjectiveEvaluation` (filled with finite
    penalty values) — both serialization layers compose through the
    cooperative ``to_dict``/``_kwargs_from`` chains.
    """


class MultiObjectiveProblem(Problem):
    """Constrained multi-fidelity problem with a vector of objectives.

    Subclasses set :attr:`space`, :attr:`n_objectives` (optionally
    :attr:`objective_names`), :attr:`n_constraints`, the fidelity axis,
    and implement :meth:`_evaluate_multi` returning ``(objectives,
    constraints, metrics)``. Every objective is minimized; negate
    maximization goals at this boundary.
    """

    name = "multi-objective-problem"

    def __init__(
        self,
        space: DesignSpace,
        n_objectives: int,
        objective_names: tuple[str, ...] | None = None,
        n_constraints: int = 0,
        fidelities: tuple[str, ...] = (FIDELITY_LOW, FIDELITY_HIGH),
        costs: dict[str, float] | None = None,
    ):
        if n_objectives < 2:
            raise ValueError(
                "a multi-objective problem needs at least two objectives; "
                "use Problem for scalar ones"
            )
        super().__init__(
            space=space,
            n_constraints=n_constraints,
            fidelities=fidelities,
            costs=costs,
        )
        self.n_objectives = int(n_objectives)
        if objective_names is None:
            objective_names = tuple(f"f{i + 1}" for i in range(n_objectives))
        if len(objective_names) != n_objectives:
            raise ValueError(
                f"got {len(objective_names)} objective names for "
                f"{n_objectives} objectives"
            )
        self.objective_names = tuple(objective_names)

    # ------------------------------------------------------------------
    def evaluate(
        self, x: np.ndarray, fidelity: str | None = None
    ) -> MultiObjectiveEvaluation:
        """Evaluate one design point (physical units) at ``fidelity``."""
        fidelity = fidelity if fidelity is not None else self.highest_fidelity
        self._check_fidelity(fidelity)
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.dim:
            raise ValueError(f"expected {self.dim} variables, got {x.size}")
        if not np.all(np.isfinite(x)):
            raise ValueError("design point must be finite")
        try:
            objectives, constraints, metrics = self._evaluate_multi(x, fidelity)
        except self.failure_exceptions as exc:
            return self.failure_evaluation(fidelity, x=x, error=exc)
        objectives = np.asarray(objectives, dtype=float).ravel()
        constraints = np.asarray(constraints, dtype=float).ravel()
        if objectives.size != self.n_objectives:
            raise RuntimeError(
                f"{type(self).__name__} returned {objectives.size} "
                f"objectives, declared {self.n_objectives}"
            )
        if constraints.size != self.n_constraints:
            raise RuntimeError(
                f"{type(self).__name__} returned {constraints.size} "
                f"constraints, declared {self.n_constraints}"
            )
        return MultiObjectiveEvaluation(
            objective=float(objectives[0]),
            constraints=constraints,
            fidelity=fidelity,
            cost=self.costs[fidelity],
            metrics={key: _plain(value) for key, value in metrics.items()},
            objectives=objectives,
        )

    # ------------------------------------------------------------------
    # failure path
    # ------------------------------------------------------------------
    def failure_evaluation(
        self,
        fidelity: str | None = None,
        *,
        x: np.ndarray | None = None,
        error: BaseException | str = "",
        error_type: str | None = None,
        attempts: int = 1,
        wall_time_s: float = 0.0,
        metrics: dict | None = None,
    ) -> FailedMultiObjectiveEvaluation:
        """Multi-objective variant of :meth:`Problem.failure_evaluation`."""
        fidelity = fidelity if fidelity is not None else self.highest_fidelity
        self._check_fidelity(fidelity)
        if isinstance(error, BaseException):
            if error_type is None:
                error_type = type(error).__name__
            error = str(error)
        objectives, constraints, hook_metrics = self._failure_outcome_multi(
            x, fidelity
        )
        objectives = np.asarray(objectives, dtype=float).ravel()
        return FailedMultiObjectiveEvaluation(
            objective=float(objectives[0]),
            constraints=np.asarray(constraints, dtype=float).ravel(),
            fidelity=fidelity,
            cost=self.costs[fidelity],
            metrics=dict(hook_metrics) if metrics is None else dict(metrics),
            objectives=objectives,
            error_type=error_type if error_type is not None else "Exception",
            error=str(error),
            attempts=int(attempts),
            wall_time_s=float(wall_time_s),
        )

    def _failure_outcome_multi(
        self, x: np.ndarray | None, fidelity: str
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Penalty ``(objectives, constraints, metrics)`` for a failure.

        The default fills every objective with the scalar penalty and
        violates every constraint by 1; testbenches override it to keep
        their historical penalty values.
        """
        return (
            np.full(self.n_objectives, self.failure_objective),
            np.full(self.n_constraints, 1.0),
            {},
        )

    # ------------------------------------------------------------------
    def _evaluate_multi(
        self, x: np.ndarray, fidelity: str
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Subclass hook: return ``(objectives, constraints, metrics)``."""
        raise NotImplementedError

    def _evaluate(self, x, fidelity):
        raise TypeError(
            "MultiObjectiveProblem subclasses implement _evaluate_multi; "
            "the scalar _evaluate hook does not apply"
        )


class ZDT1Problem(MultiObjectiveProblem):
    """Two-fidelity ZDT1: the standard convex bi-objective benchmark.

    High fidelity is the classic ZDT1 on ``[0, 1]^d``::

        f1 = x1
        f2 = g * (1 - sqrt(x1 / g)),   g = 1 + 9 * mean(x[1:])

    whose Pareto front is ``f2 = 1 - sqrt(f1)`` at ``x[1:] = 0``. The
    low fidelity is systematically wrong the way a coarse simulator is:
    ``f1`` is shrunk and shifted, ``f2`` is scaled with a smooth
    input-dependent ripple — strongly correlated with the truth, so the
    NARGP/AR1 fusion has structure to exploit, but biased enough that
    optimizing the coarse model alone misplaces the front.

    With ``constrained=True`` a single constraint ``c = 0.3 - x1 <= 0``
    cuts off the low-``f1`` end of the front, exercising the
    constrained-domination rules of the Pareto archive.
    """

    def __init__(self, dim: int = 2, constrained: bool = False):
        if dim < 2:
            raise ValueError("ZDT1 needs at least two variables")
        space = DesignSpace(
            [Variable(f"x{i + 1}", 0.0, 1.0) for i in range(dim)]
        )
        super().__init__(
            space=space,
            n_objectives=2,
            objective_names=("f1", "f2"),
            n_constraints=1 if constrained else 0,
            fidelities=(FIDELITY_LOW, FIDELITY_HIGH),
            costs={FIDELITY_LOW: 0.1, FIDELITY_HIGH: 1.0},
        )
        self.constrained = bool(constrained)
        self.name = "zdt1-mf-constrained" if constrained else "zdt1-mf"

    def _evaluate_multi(self, x, fidelity):
        x1 = float(x[0])
        g = 1.0 + 9.0 * float(np.mean(x[1:]))
        f1 = x1
        f2 = g * (1.0 - np.sqrt(x1 / g))
        if fidelity == FIDELITY_LOW:
            f1 = 0.85 * x1 + 0.05
            f2 = 0.8 * f2 + 0.3 + 0.1 * np.sin(4.0 * np.pi * x1)
        constraints = (
            np.array([0.3 - f1]) if self.constrained else np.empty(0)
        )
        return np.array([f1, f2]), constraints, {"g": g}
