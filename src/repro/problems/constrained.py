"""Constrained synthetic multi-fidelity problems.

Used to exercise the constrained machinery (wEI of eq. 6, the
first-feasible search of eq. 13, and the constrained fidelity criterion
of eq. 12) without paying for circuit simulations.
"""

from __future__ import annotations

import numpy as np

from ..design.space import DesignSpace, Variable
from .base import FIDELITY_HIGH, FIDELITY_LOW, Problem

__all__ = ["GardnerProblem", "ConstrainedBraninProblem"]


class GardnerProblem(Problem):
    """Gardner et al. (2014) simulation problem #1, made two-fidelity.

    Minimize ``cos(2 x1) cos(x2) + sin(x1)`` subject to
    ``cos(x1) cos(x2) - sin(x1) sin(x2) + 0.5 < 0`` on ``[0, 6]^2``.
    The low fidelity warps both surfaces with a smooth multiplicative
    bias, keeping a nonlinear cross-fidelity relationship.
    """

    name = "gardner"

    def __init__(self, cost_ratio: float = 10.0):
        if cost_ratio <= 1:
            raise ValueError("cost_ratio must be > 1")
        space = DesignSpace(
            [Variable("x1", 0.0, 6.0), Variable("x2", 0.0, 6.0)]
        )
        super().__init__(
            space=space,
            n_constraints=1,
            fidelities=(FIDELITY_LOW, FIDELITY_HIGH),
            costs={FIDELITY_LOW: 1.0 / cost_ratio, FIDELITY_HIGH: 1.0},
        )

    def _evaluate(self, x, fidelity):
        x1, x2 = float(x[0]), float(x[1])
        objective = np.cos(2.0 * x1) * np.cos(x2) + np.sin(x1)
        constraint = np.cos(x1) * np.cos(x2) - np.sin(x1) * np.sin(x2) + 0.5
        if fidelity == FIDELITY_LOW:
            bias = 0.15 * np.sin(0.7 * x1 + 0.3 * x2)
            objective = (1.0 + bias) * objective + 0.1 * np.cos(x1)
            constraint = constraint + 0.2 * np.sin(x1 * x2 / 4.0)
        return float(objective), np.array([constraint]), {}


class ConstrainedBraninProblem(Problem):
    """Branin objective with a disk constraint, two fidelities.

    Minimize Branin subject to ``(x1 - 2.5)^2 + (x2 - 7.5)^2 <= 50``
    (written as ``c(x) < 0``). The low fidelity is the standard warped
    Branin plus a constraint-boundary shift.
    """

    name = "constrained-branin"

    def __init__(self, cost_ratio: float = 10.0):
        if cost_ratio <= 1:
            raise ValueError("cost_ratio must be > 1")
        space = DesignSpace(
            [Variable("x1", -5.0, 10.0), Variable("x2", 0.0, 15.0)]
        )
        super().__init__(
            space=space,
            n_constraints=1,
            fidelities=(FIDELITY_LOW, FIDELITY_HIGH),
            costs={FIDELITY_LOW: 1.0 / cost_ratio, FIDELITY_HIGH: 1.0},
        )

    @staticmethod
    def _branin(x1: float, x2: float) -> float:
        a, b, c = 1.0, 5.1 / (4.0 * np.pi**2), 5.0 / np.pi
        r, s, t = 6.0, 10.0, 1.0 / (8.0 * np.pi)
        return (
            a * (x2 - b * x1**2 + c * x1 - r) ** 2
            + s * (1 - t) * np.cos(x1)
            + s
        )

    def _evaluate(self, x, fidelity):
        x1, x2 = float(x[0]), float(x[1])
        constraint = (x1 - 2.5) ** 2 + (x2 - 7.5) ** 2 - 50.0
        if fidelity == FIDELITY_HIGH:
            objective = self._branin(x1, x2)
        else:
            objective = (
                0.5 * self._branin(0.7 * x1, 0.75 * x2)
                + 10.0 * np.sin(x1)
                + 0.5 * x1
            )
            constraint = constraint + 5.0 * np.cos(x1 / 2.0)
        return float(objective), np.array([constraint]), {}
