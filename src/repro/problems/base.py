"""Problem abstraction shared by synthetic suites and circuit testbenches.

A :class:`Problem` is a constrained, possibly multi-fidelity black box:

* the **objective** is minimized (maximization problems negate at this
  boundary — e.g. power-amplifier efficiency);
* each **constraint** is feasible when its value is ``c_i <= 0`` (paper
  eq. 1; a constraint sitting exactly on its specification is met);
* each **fidelity** has a relative evaluation cost, with the most
  accurate fidelity costing 1.0 "equivalent high-fidelity simulations" —
  the cost unit in which the paper reports its budgets (Tables 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..design.space import DesignSpace

__all__ = ["Evaluation", "Problem", "FIDELITY_LOW", "FIDELITY_HIGH"]

FIDELITY_LOW = "low"
FIDELITY_HIGH = "high"


@dataclass(frozen=True)
class Evaluation:
    """Result of one black-box evaluation.

    Attributes
    ----------
    objective:
        Value of the function being minimized.
    constraints:
        Array of constraint values; ``c_i <= 0`` means constraint ``i``
        is satisfied. Empty for unconstrained problems.
    fidelity:
        The fidelity the evaluation was performed at.
    cost:
        Relative cost in equivalent high-fidelity simulations.
    metrics:
        Optional named raw performance numbers (e.g. ``{"Eff": 62.3}``)
        for reporting.
    """

    objective: float
    constraints: np.ndarray
    fidelity: str
    cost: float
    metrics: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """True when every constraint satisfies ``c_i <= 0``.

        A constraint exactly on its specification boundary counts as
        met, consistent with :attr:`total_violation` (which is 0 there)
        and the paper's ``c_i(x) <= 0`` convention.
        """
        return bool(np.all(self.constraints <= 0.0))

    @property
    def total_violation(self) -> float:
        """Sum of positive constraint values (0 when feasible)."""
        if self.constraints.size == 0:
            return 0.0
        return float(np.sum(np.maximum(self.constraints, 0.0)))

    # ------------------------------------------------------------------
    # serialization (checkpoint format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable payload that round-trips via :meth:`from_dict`.

        Floats survive a JSON round trip bit-exactly (``repr`` shortest
        representation), which the session checkpoint format relies on.
        """
        return {
            "objective": float(self.objective),
            "constraints": [float(c) for c in self.constraints],
            "fidelity": self.fidelity,
            "cost": float(self.cost),
            "metrics": {key: _plain(value) for key, value in self.metrics.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Evaluation":
        """Rebuild an evaluation from :meth:`to_dict` output.

        Payloads carrying an ``objectives`` vector are dispatched to
        :class:`repro.problems.MultiObjectiveEvaluation`, so histories
        mixing single- and multi-objective records round-trip through
        the session checkpoint format unchanged.
        """
        if cls is Evaluation and "objectives" in payload:
            from .multi import MultiObjectiveEvaluation

            return MultiObjectiveEvaluation.from_dict(payload)
        return cls(
            objective=float(payload["objective"]),
            constraints=np.asarray(payload["constraints"], dtype=float),
            fidelity=str(payload["fidelity"]),
            cost=float(payload["cost"]),
            metrics=dict(payload.get("metrics", {})),
        )


def _plain(value):
    """Coerce numpy scalars/arrays to JSON-friendly python values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    return value


class Problem:
    """Base class for constrained multi-fidelity optimization problems.

    Subclasses set :attr:`space`, :attr:`n_constraints`,
    :attr:`fidelities` / :attr:`costs` and implement :meth:`_evaluate`.
    """

    #: Name used in reports.
    name: str = "problem"

    def __init__(
        self,
        space: DesignSpace,
        n_constraints: int = 0,
        fidelities: tuple[str, ...] = (FIDELITY_LOW, FIDELITY_HIGH),
        costs: dict[str, float] | None = None,
    ):
        if n_constraints < 0:
            raise ValueError("n_constraints must be >= 0")
        if not fidelities:
            raise ValueError("need at least one fidelity")
        self.space = space
        self.n_constraints = int(n_constraints)
        self.fidelities = tuple(fidelities)
        if costs is None:
            costs = {f: 1.0 for f in fidelities}
        missing = set(fidelities) - set(costs)
        if missing:
            raise ValueError(f"costs missing for fidelities {sorted(missing)}")
        if any(c <= 0 for c in costs.values()):
            raise ValueError("all fidelity costs must be positive")
        self.costs = dict(costs)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.space.dim

    @property
    def highest_fidelity(self) -> str:
        return self.fidelities[-1]

    @property
    def lowest_fidelity(self) -> str:
        return self.fidelities[0]

    def cost(self, fidelity: str) -> float:
        """Relative cost of one evaluation at ``fidelity``."""
        self._check_fidelity(fidelity)
        return self.costs[fidelity]

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, fidelity: str | None = None) -> Evaluation:
        """Evaluate one design point given in **physical units**.

        ``fidelity`` defaults to the highest available fidelity.
        """
        fidelity = fidelity if fidelity is not None else self.highest_fidelity
        self._check_fidelity(fidelity)
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.dim:
            raise ValueError(f"expected {self.dim} variables, got {x.size}")
        if not np.all(np.isfinite(x)):
            raise ValueError("design point must be finite")
        objective, constraints, metrics = self._evaluate(x, fidelity)
        constraints = np.asarray(constraints, dtype=float).ravel()
        if constraints.size != self.n_constraints:
            raise RuntimeError(
                f"{type(self).__name__} returned {constraints.size} "
                f"constraints, declared {self.n_constraints}"
            )
        return Evaluation(
            objective=float(objective),
            constraints=constraints,
            fidelity=fidelity,
            cost=self.costs[fidelity],
            metrics=metrics,
        )

    def evaluate_unit(
        self, u: np.ndarray, fidelity: str | None = None
    ) -> Evaluation:
        """Evaluate a unit-cube point (the optimizer-facing entry point)."""
        u = np.asarray(u, dtype=float).ravel()
        return self.evaluate(self.space.from_unit(np.clip(u, 0.0, 1.0)), fidelity)

    # ------------------------------------------------------------------
    def _evaluate(
        self, x: np.ndarray, fidelity: str
    ) -> tuple[float, np.ndarray, dict]:
        """Subclass hook: return ``(objective, constraints, metrics)``."""
        raise NotImplementedError

    def _check_fidelity(self, fidelity: str) -> None:
        if fidelity not in self.fidelities:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; available: {self.fidelities}"
            )
