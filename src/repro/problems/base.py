"""Problem abstraction shared by synthetic suites and circuit testbenches.

A :class:`Problem` is a constrained, possibly multi-fidelity black box:

* the **objective** is minimized (maximization problems negate at this
  boundary — e.g. power-amplifier efficiency);
* each **constraint** is feasible when its value is ``c_i <= 0`` (paper
  eq. 1; a constraint sitting exactly on its specification is met);
* each **fidelity** has a relative evaluation cost, with the most
  accurate fidelity costing 1.0 "equivalent high-fidelity simulations" —
  the cost unit in which the paper reports its budgets (Tables 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..design.space import DesignSpace

__all__ = [
    "Evaluation",
    "FailedEvaluation",
    "Problem",
    "FIDELITY_LOW",
    "FIDELITY_HIGH",
]

FIDELITY_LOW = "low"
FIDELITY_HIGH = "high"


@dataclass(frozen=True)
class Evaluation:
    """Result of one black-box evaluation.

    Attributes
    ----------
    objective:
        Value of the function being minimized.
    constraints:
        Array of constraint values; ``c_i <= 0`` means constraint ``i``
        is satisfied. Empty for unconstrained problems.
    fidelity:
        The fidelity the evaluation was performed at.
    cost:
        Relative cost in equivalent high-fidelity simulations.
    metrics:
        Optional named raw performance numbers (e.g. ``{"Eff": 62.3}``)
        for reporting.
    """

    objective: float
    constraints: np.ndarray
    fidelity: str
    cost: float
    metrics: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """True when every constraint satisfies ``c_i <= 0``.

        A constraint exactly on its specification boundary counts as
        met, consistent with :attr:`total_violation` (which is 0 there)
        and the paper's ``c_i(x) <= 0`` convention.
        """
        return bool(np.all(self.constraints <= 0.0))

    @property
    def failed(self) -> bool:
        """True when the simulation did not complete normally.

        Failed evaluations (see :class:`FailedEvaluation`) carry finite
        penalty outcomes so models can still train on them, but they are
        never feasible and never become incumbents.
        """
        return False

    @property
    def total_violation(self) -> float:
        """Sum of positive constraint values (0 when feasible)."""
        if self.constraints.size == 0:
            return 0.0
        return float(np.sum(np.maximum(self.constraints, 0.0)))

    # ------------------------------------------------------------------
    # serialization (checkpoint format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable payload that round-trips via :meth:`from_dict`.

        Floats survive a JSON round trip bit-exactly (``repr`` shortest
        representation), which the session checkpoint format relies on.
        """
        return {
            "objective": float(self.objective),
            "constraints": [float(c) for c in self.constraints],
            "fidelity": self.fidelity,
            "cost": float(self.cost),
            "metrics": {key: _plain(value) for key, value in self.metrics.items()},
        }

    @classmethod
    def _kwargs_from(cls, payload: dict) -> dict:
        """Constructor kwargs encoded in a :meth:`to_dict` payload.

        Subclasses extend this cooperatively (``super()._kwargs_from``)
        so multiple-inheritance combinations — e.g. a failed
        multi-objective evaluation — deserialize every layer.
        """
        return dict(
            objective=float(payload["objective"]),
            constraints=np.asarray(payload["constraints"], dtype=float),
            fidelity=str(payload["fidelity"]),
            cost=float(payload["cost"]),
            metrics=dict(payload.get("metrics", {})),
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "Evaluation":
        """Rebuild an evaluation from :meth:`to_dict` output.

        Called on the base class, payloads are dispatched on their
        marker keys — an ``objectives`` vector selects
        :class:`repro.problems.MultiObjectiveEvaluation`, a ``failure``
        block selects :class:`FailedEvaluation`, both select the
        combined class — so histories mixing record kinds round-trip
        through the session checkpoint format unchanged.
        """
        target = cls
        if cls is Evaluation:
            multi = "objectives" in payload
            failed = "failure" in payload
            if multi and failed:
                from .multi import FailedMultiObjectiveEvaluation

                target = FailedMultiObjectiveEvaluation
            elif multi:
                from .multi import MultiObjectiveEvaluation

                target = MultiObjectiveEvaluation
            elif failed:
                target = FailedEvaluation
        return target(**target._kwargs_from(payload))


@dataclass(frozen=True)
class FailedEvaluation(Evaluation):
    """An evaluation that did not complete normally.

    Failure is first-class data instead of an exception: the evaluation
    layer (worker crash, wall-clock timeout, a simulator convergence
    error, a non-finite result) resolves to one of these and the
    optimization continues. The penalty ``objective``/``constraints``
    come from :meth:`Problem.failure_evaluation`, are always finite and
    always infeasible, so strategies fold the failure in as a heavily
    infeasible data point rather than crashing or poisoning a GP fit.

    Attributes
    ----------
    error_type:
        Exception class name (or a farm-level tag such as
        ``"EvaluationTimeout"`` / ``"WorkerDied"``).
    error:
        Human-readable message of the captured failure.
    attempts:
        How many evaluation attempts were spent, including retries.
    wall_time_s:
        Total wall-clock time spent across all attempts.
    """

    error_type: str = "Exception"
    error: str = ""
    attempts: int = 1
    wall_time_s: float = 0.0

    @property
    def failed(self) -> bool:
        return True

    @property
    def feasible(self) -> bool:
        """A failed evaluation is never feasible, whatever its penalty
        constraint values say."""
        return False

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload["failure"] = {
            "error_type": self.error_type,
            "error": self.error,
            "attempts": int(self.attempts),
            "wall_time_s": float(self.wall_time_s),
        }
        return payload

    @classmethod
    def _kwargs_from(cls, payload: dict) -> dict:
        kwargs = super()._kwargs_from(payload)
        failure = payload.get("failure", {})
        kwargs.update(
            error_type=str(failure.get("error_type", "Exception")),
            error=str(failure.get("error", "")),
            attempts=int(failure.get("attempts", 1)),
            wall_time_s=float(failure.get("wall_time_s", 0.0)),
        )
        return kwargs


def _plain(value: Any) -> Any:
    """Coerce numpy scalars/arrays to JSON-friendly python values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    return value


class Problem:
    """Base class for constrained multi-fidelity optimization problems.

    Subclasses set :attr:`space`, :attr:`n_constraints`,
    :attr:`fidelities` / :attr:`costs` and implement :meth:`_evaluate`.
    """

    #: Name used in reports.
    name: str = "problem"

    #: Exception types :meth:`evaluate` converts into a
    #: :class:`FailedEvaluation` instead of propagating. Circuit
    #: testbenches register their simulator's convergence errors here so
    #: every scenario degrades identically; the empty default preserves
    #: plain crash-on-error semantics for synthetic problems.
    failure_exceptions: tuple = ()

    #: Penalty objective reported by the default failure outcome.
    failure_objective: float = 1e3

    def __init__(
        self,
        space: DesignSpace,
        n_constraints: int = 0,
        fidelities: tuple[str, ...] = (FIDELITY_LOW, FIDELITY_HIGH),
        costs: dict[str, float] | None = None,
    ) -> None:
        if n_constraints < 0:
            raise ValueError("n_constraints must be >= 0")
        if not fidelities:
            raise ValueError("need at least one fidelity")
        self.space = space
        self.n_constraints = int(n_constraints)
        self.fidelities = tuple(fidelities)
        if costs is None:
            costs = {f: 1.0 for f in fidelities}
        missing = set(fidelities) - set(costs)
        if missing:
            raise ValueError(f"costs missing for fidelities {sorted(missing)}")
        if any(c <= 0 for c in costs.values()):
            raise ValueError("all fidelity costs must be positive")
        self.costs = dict(costs)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.space.dim

    @property
    def highest_fidelity(self) -> str:
        return self.fidelities[-1]

    @property
    def lowest_fidelity(self) -> str:
        return self.fidelities[0]

    def cost(self, fidelity: str) -> float:
        """Relative cost of one evaluation at ``fidelity``."""
        self._check_fidelity(fidelity)
        return self.costs[fidelity]

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, fidelity: str | None = None) -> Evaluation:
        """Evaluate one design point given in **physical units**.

        ``fidelity`` defaults to the highest available fidelity.
        """
        fidelity = fidelity if fidelity is not None else self.highest_fidelity
        self._check_fidelity(fidelity)
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.dim:
            raise ValueError(f"expected {self.dim} variables, got {x.size}")
        if not np.all(np.isfinite(x)):
            raise ValueError("design point must be finite")
        try:
            objective, constraints, metrics = self._evaluate(x, fidelity)
        except self.failure_exceptions as exc:
            return self.failure_evaluation(fidelity, x=x, error=exc)
        constraints = np.asarray(constraints, dtype=float).ravel()
        if constraints.size != self.n_constraints:
            raise RuntimeError(
                f"{type(self).__name__} returned {constraints.size} "
                f"constraints, declared {self.n_constraints}"
            )
        return Evaluation(
            objective=float(objective),
            constraints=constraints,
            fidelity=fidelity,
            cost=self.costs[fidelity],
            metrics=metrics,
        )

    def evaluate_unit(
        self, u: np.ndarray, fidelity: str | None = None
    ) -> Evaluation:
        """Evaluate a unit-cube point (the optimizer-facing entry point)."""
        u = np.asarray(u, dtype=float).ravel()
        return self.evaluate(self.space.from_unit(np.clip(u, 0.0, 1.0)), fidelity)

    # ------------------------------------------------------------------
    # failure path
    # ------------------------------------------------------------------
    def failure_evaluation(
        self,
        fidelity: str | None = None,
        *,
        x: np.ndarray | None = None,
        error: BaseException | str = "",
        error_type: str | None = None,
        attempts: int = 1,
        wall_time_s: float = 0.0,
        metrics: dict | None = None,
    ) -> FailedEvaluation:
        """Build the :class:`FailedEvaluation` for one failed attempt.

        The penalty outcome comes from the :meth:`_failure_outcome`
        hook, charged at the fidelity's normal cost so failures consume
        budget exactly like successes (no double-spending, no free
        retries). ``x`` is the physical-unit design point when known —
        some hooks use it (e.g. an area objective computable without
        simulation). Callers beyond :meth:`evaluate` itself: the async
        evaluator farm (timeouts, dead workers, exhausted retries) and
        ``Strategy.observe`` (non-finite results).
        """
        fidelity = fidelity if fidelity is not None else self.highest_fidelity
        self._check_fidelity(fidelity)
        if isinstance(error, BaseException):
            if error_type is None:
                error_type = type(error).__name__
            error = str(error)
        objective, constraints, hook_metrics = self._failure_outcome(x, fidelity)
        return FailedEvaluation(
            objective=float(objective),
            constraints=np.asarray(constraints, dtype=float).ravel(),
            fidelity=fidelity,
            cost=self.costs[fidelity],
            metrics=dict(hook_metrics) if metrics is None else dict(metrics),
            error_type=error_type if error_type is not None else "Exception",
            error=str(error),
            attempts=int(attempts),
            wall_time_s=float(wall_time_s),
        )

    def _failure_outcome(
        self, x: np.ndarray | None, fidelity: str
    ) -> tuple[float, np.ndarray, dict]:
        """Penalty ``(objective, constraints, metrics)`` for a failure.

        The default is a large objective with every constraint violated
        by 1. Testbenches override this to keep their historical penalty
        values (e.g. the op-amp's ``FAILED_METRICS``) so trajectories
        with convergence failures are unchanged by the failure-path
        refactor.
        """
        return (
            self.failure_objective,
            np.full(self.n_constraints, 1.0),
            {},
        )

    # ------------------------------------------------------------------
    def _evaluate(
        self, x: np.ndarray, fidelity: str
    ) -> tuple[float, np.ndarray, dict]:
        """Subclass hook: return ``(objective, constraints, metrics)``."""
        raise NotImplementedError

    def _check_fidelity(self, fidelity: str) -> None:
        if fidelity not in self.fidelities:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; available: {self.fidelities}"
            )
