"""Synthetic multi-fidelity benchmark functions.

The pedagogical pair reproduced in the paper's Figures 1-2 comes from
Perdikaris et al. (2017); the remaining pairs (Forrester, Currin, Park,
Branin, Hartmann) are the standard multi-fidelity test suite used across
the multi-fidelity BO literature. Each pair is exposed both as plain
vectorized functions (for model-level tests and figures) and as a
:class:`repro.problems.Problem` (for optimizer-level tests).

All *low* fidelities are cheap-but-biased versions of the *high*
fidelity, with nonlinear (not merely affine) relationships — the regime
the paper's NARGP fusion targets.
"""

from __future__ import annotations

import time

import numpy as np

from ..design.space import DesignSpace, Variable
from .base import FIDELITY_HIGH, FIDELITY_LOW, Problem

__all__ = [
    "LatencyProblem",
    "pedagogical_low",
    "pedagogical_high",
    "forrester_high",
    "forrester_low",
    "currin_high",
    "currin_low",
    "park_high",
    "park_low",
    "branin_high",
    "branin_low",
    "hartmann3_high",
    "hartmann3_low",
    "PedagogicalProblem",
    "ForresterProblem",
    "CurrinProblem",
    "ParkProblem",
    "BraninProblem",
    "Hartmann3Problem",
]


# ----------------------------------------------------------------------
# function pairs (vectorized: x has shape (n, d), returns (n,))
# ----------------------------------------------------------------------
def _col(x: np.ndarray, i: int) -> np.ndarray:
    x = np.atleast_2d(np.asarray(x, dtype=float))
    return x[:, i]


def pedagogical_low(x: np.ndarray) -> np.ndarray:
    """Perdikaris pedagogical low fidelity: ``sin(8 pi x)`` on [0, 1]."""
    return np.sin(8.0 * np.pi * _col(x, 0))


def pedagogical_high(x: np.ndarray) -> np.ndarray:
    """Perdikaris pedagogical high fidelity:
    ``(x - sqrt(2)) * f_low(x)^2`` — a *nonlinear* transform of the low
    fidelity, the example behind the paper's Figures 1-2."""
    t = _col(x, 0)
    low = np.sin(8.0 * np.pi * t)
    return (t - np.sqrt(2.0)) * low * low


def forrester_high(x: np.ndarray) -> np.ndarray:
    """Forrester (2007) 1-D function ``(6x - 2)^2 sin(12x - 4)``."""
    t = _col(x, 0)
    return (6.0 * t - 2.0) ** 2 * np.sin(12.0 * t - 4.0)


def forrester_low(x: np.ndarray) -> np.ndarray:
    """Standard biased low fidelity ``0.5 f_h + 10 (x - 0.5) - 5``."""
    t = _col(x, 0)
    return 0.5 * forrester_high(x) + 10.0 * (t - 0.5) - 5.0


def currin_high(x: np.ndarray) -> np.ndarray:
    """Currin exponential function on [0, 1]^2."""
    x1, x2 = _col(x, 0), _col(x, 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        factor = np.where(
            x2 > 1e-12, 1.0 - np.exp(-1.0 / (2.0 * np.maximum(x2, 1e-12))), 1.0
        )
    numerator = 2300.0 * x1**3 + 1900.0 * x1**2 + 2092.0 * x1 + 60.0
    denominator = 100.0 * x1**3 + 500.0 * x1**2 + 4.0 * x1 + 20.0
    return factor * numerator / denominator


def currin_low(x: np.ndarray) -> np.ndarray:
    """Xiong et al. low-fidelity Currin: average of shifted evaluations."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    shift = 0.05
    x_pp = np.column_stack([x[:, 0] + shift, np.minimum(x[:, 1] + shift, 1.0)])
    x_pm = np.column_stack([x[:, 0] + shift, np.maximum(x[:, 1] - shift, 0.0)])
    x_mp = np.column_stack([x[:, 0] - shift, np.minimum(x[:, 1] + shift, 1.0)])
    x_mm = np.column_stack([x[:, 0] - shift, np.maximum(x[:, 1] - shift, 0.0)])
    return 0.25 * (
        currin_high(x_pp) + currin_high(x_pm)
        + currin_high(x_mp) + currin_high(x_mm)
    )


def park_high(x: np.ndarray) -> np.ndarray:
    """Park (1991) 4-D function on [0, 1]^4 (inputs floored away from 0)."""
    x = np.clip(np.atleast_2d(np.asarray(x, dtype=float)), 1e-8, 1.0)
    x1, x2, x3, x4 = x[:, 0], x[:, 1], x[:, 2], x[:, 3]
    term1 = x1 / 2.0 * (np.sqrt(1.0 + (x2 + x3**2) * x4 / x1**2) - 1.0)
    term2 = (x1 + 3.0 * x4) * np.exp(1.0 + np.sin(x3))
    return term1 + term2


def park_low(x: np.ndarray) -> np.ndarray:
    """Xiong et al. low-fidelity Park function."""
    x = np.clip(np.atleast_2d(np.asarray(x, dtype=float)), 1e-8, 1.0)
    x1, x2 = x[:, 0], x[:, 1]
    return (
        (1.0 + np.sin(x1) / 10.0) * park_high(x)
        - 2.0 * x1 + x2**2 + x[:, 2] ** 2 + 0.5
    )


def branin_high(x: np.ndarray) -> np.ndarray:
    """Branin function on its native domain x1 in [-5, 10], x2 in [0, 15]."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    x1, x2 = x[:, 0], x[:, 1]
    a, b, c = 1.0, 5.1 / (4.0 * np.pi**2), 5.0 / np.pi
    r, s, t = 6.0, 10.0, 1.0 / (8.0 * np.pi)
    return a * (x2 - b * x1**2 + c * x1 - r) ** 2 + s * (1 - t) * np.cos(x1) + s


def branin_low(x: np.ndarray) -> np.ndarray:
    """Perturbed low-fidelity Branin (shifted optimum, warped bowl)."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    x1, x2 = x[:, 0], x[:, 1]
    shifted = np.column_stack([0.7 * x1, 0.75 * x2])
    return (
        0.5 * branin_high(shifted)
        + 10.0 * (x2 - 0.5) ** 0.0 * np.sin(x1)
        + 5.0 * x1 / 10.0
    )


_HARTMANN3_A = np.array(
    [[3.0, 10.0, 30.0], [0.1, 10.0, 35.0], [3.0, 10.0, 30.0], [0.1, 10.0, 35.0]]
)
_HARTMANN3_P = np.array(
    [
        [0.3689, 0.1170, 0.2673],
        [0.4699, 0.4387, 0.7470],
        [0.1091, 0.8732, 0.5547],
        [0.0381, 0.5743, 0.8828],
    ]
)
_HARTMANN3_ALPHA = np.array([1.0, 1.2, 3.0, 3.2])


def hartmann3_high(x: np.ndarray) -> np.ndarray:
    """Hartmann-3 function on [0, 1]^3 (minimization, min ~ -3.8628)."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    inner = np.einsum(
        "kj,nkj->nk", _HARTMANN3_A, (x[:, None, :] - _HARTMANN3_P[None, :, :]) ** 2
    )
    return -np.einsum("k,nk->n", _HARTMANN3_ALPHA, np.exp(-inner))


def hartmann3_low(x: np.ndarray) -> np.ndarray:
    """Low-fidelity Hartmann-3: perturbed mixture weights (Kandasamy)."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    alpha_low = _HARTMANN3_ALPHA - 0.2 * np.array([1.0, -1.0, 1.0, -1.0])
    inner = np.einsum(
        "kj,nkj->nk", _HARTMANN3_A, (x[:, None, :] - _HARTMANN3_P[None, :, :]) ** 2
    )
    return -np.einsum("k,nk->n", alpha_low, np.exp(-inner))


# ----------------------------------------------------------------------
# Problem wrappers
# ----------------------------------------------------------------------
class _SyntheticMF(Problem):
    """Unconstrained two-fidelity problem from a function pair."""

    def __init__(self, low_fn, high_fn, space: DesignSpace, cost_ratio: float):
        if cost_ratio <= 1:
            raise ValueError("cost_ratio must be > 1")
        super().__init__(
            space=space,
            n_constraints=0,
            fidelities=(FIDELITY_LOW, FIDELITY_HIGH),
            costs={FIDELITY_LOW: 1.0 / cost_ratio, FIDELITY_HIGH: 1.0},
        )
        self._low_fn = low_fn
        self._high_fn = high_fn

    def _evaluate(self, x, fidelity):
        fn = self._low_fn if fidelity == FIDELITY_LOW else self._high_fn
        value = float(fn(x.reshape(1, -1))[0])
        return value, np.empty(0), {}


class PedagogicalProblem(_SyntheticMF):
    """The Perdikaris pedagogical pair as a minimization problem."""

    name = "pedagogical"

    def __init__(self, cost_ratio: float = 10.0):
        space = DesignSpace([Variable("x", 0.0, 1.0)])
        super().__init__(pedagogical_low, pedagogical_high, space, cost_ratio)


class ForresterProblem(_SyntheticMF):
    """Forrester 1-D pair; global minimum ~ -6.0207 at x ~ 0.7572."""

    name = "forrester"

    def __init__(self, cost_ratio: float = 10.0):
        space = DesignSpace([Variable("x", 0.0, 1.0)])
        super().__init__(forrester_low, forrester_high, space, cost_ratio)


class CurrinProblem(_SyntheticMF):
    """Currin exponential 2-D pair (minimized, so sign-flipped inputs
    are *not* applied — the raw function is minimized at the corner)."""

    name = "currin"

    def __init__(self, cost_ratio: float = 10.0):
        space = DesignSpace(
            [Variable("x1", 0.0, 1.0), Variable("x2", 0.0, 1.0)]
        )
        super().__init__(currin_low, currin_high, space, cost_ratio)


class ParkProblem(_SyntheticMF):
    """Park 4-D pair."""

    name = "park"

    def __init__(self, cost_ratio: float = 10.0):
        space = DesignSpace(
            [Variable(f"x{i + 1}", 0.0, 1.0) for i in range(4)]
        )
        super().__init__(park_low, park_high, space, cost_ratio)


class BraninProblem(_SyntheticMF):
    """Branin 2-D pair on the native domain."""

    name = "branin"

    def __init__(self, cost_ratio: float = 10.0):
        space = DesignSpace(
            [Variable("x1", -5.0, 10.0), Variable("x2", 0.0, 15.0)]
        )
        super().__init__(branin_low, branin_high, space, cost_ratio)


class Hartmann3Problem(_SyntheticMF):
    """Hartmann-3 pair on [0, 1]^3."""

    name = "hartmann3"

    def __init__(self, cost_ratio: float = 10.0):
        space = DesignSpace(
            [Variable(f"x{i + 1}", 0.0, 1.0) for i in range(3)]
        )
        super().__init__(hartmann3_low, hartmann3_high, space, cost_ratio)


class LatencyProblem(Problem):
    """Forrester objective with heterogeneous, deterministic latency.

    Models the wall-clock profile of a real simulation farm: most
    evaluations are fast, a deterministic subset (``x < slow_below``)
    takes ``slow_s`` — the straggler pattern that makes barrier-style
    batch evaluation waste worker time. Used by the farm throughput
    benchmark and chaos tests; the sleep is keyed on the design point
    itself, so any scheduling of the same suggestions sleeps the same
    total time.
    """

    name = "latency"

    def __init__(self, fast_s: float = 0.01, slow_s: float = 0.5,
                 slow_below: float = 0.1):
        space = DesignSpace([Variable("x", 0.0, 1.0)])
        super().__init__(space=space, n_constraints=0)
        self.fast_s = float(fast_s)
        self.slow_s = float(slow_s)
        self.slow_below = float(slow_below)

    def _evaluate(self, x, fidelity):
        t = float(x[0])
        slow = t < self.slow_below
        time.sleep(self.slow_s if slow else self.fast_s)
        value = float(forrester_high(x.reshape(1, -1))[0])
        return value, np.empty(0), {"slow": float(slow)}
