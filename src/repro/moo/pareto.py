"""Pareto domination, non-dominated sorting and an incremental archive.

All objective matrices are ``(n, m)`` with **minimization** convention
in every coordinate. Domination follows Deb's constrained-domination
rules wherever constraint information is available:

* a feasible point dominates every infeasible point;
* between two infeasible points, the one with the strictly smaller
  total constraint violation dominates;
* between two feasible points, standard Pareto domination applies
  (no worse in every objective, strictly better in at least one).

The sorting primitives are vectorized (one ``(n, n, m)`` broadcast
instead of Python double loops) and back both the
:class:`ParetoArchive` used by :class:`repro.moo.MOMFBOptimizer` and the
brute-force cross-checks in the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "dominates",
    "non_dominated_mask",
    "constrained_non_dominated_mask",
    "non_dominated_sort",
    "ParetoArchive",
]


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` iff ``a <= b`` componentwise with at least one
    strict inequality (minimization).
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``(n, m)`` objectives.

    Duplicate rows do not dominate each other, so all copies of a
    non-dominated point are kept. Vectorized as a single ``(n, n, m)``
    broadcast comparison — O(n^2 m) work without Python loops.
    """
    f = np.atleast_2d(np.asarray(objectives, dtype=float))
    if f.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    # dominated_by[j, i] — row j dominates row i
    le = np.all(f[:, None, :] <= f[None, :, :], axis=-1)
    lt = np.any(f[:, None, :] < f[None, :, :], axis=-1)
    dominated_by = le & lt
    return ~np.any(dominated_by, axis=0)


def constrained_non_dominated_mask(
    objectives: np.ndarray, violations: np.ndarray | None = None
) -> np.ndarray:
    """Non-dominated mask under Deb's constrained-domination rules.

    ``violations`` holds each point's total constraint violation
    (``0`` means feasible, see
    :attr:`repro.problems.Evaluation.total_violation`); ``None`` means
    unconstrained, reducing to :func:`non_dominated_mask`.
    """
    f = np.atleast_2d(np.asarray(objectives, dtype=float))
    if violations is None:
        return non_dominated_mask(f)
    v = np.asarray(violations, dtype=float).ravel()
    if v.size != f.shape[0]:
        raise ValueError(
            f"{v.size} violations for {f.shape[0]} objective vectors"
        )
    feasible = v <= 0.0
    if np.any(feasible):
        mask = np.zeros(f.shape[0], dtype=bool)
        # Feasible points dominate every infeasible one; the survivors
        # are the Pareto-optimal feasible rows.
        mask[feasible] = non_dominated_mask(f[feasible])
        return mask
    # No feasible point yet: the least-violating points survive.
    return v <= np.min(v)


def non_dominated_sort(objectives: np.ndarray) -> np.ndarray:
    """Rank rows into Pareto fronts (rank 0 = non-dominated).

    Repeatedly peels the non-dominated subset; returns an ``(n,)``
    integer array of front indices.
    """
    f = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = f.shape[0]
    ranks = np.full(n, -1, dtype=int)
    remaining = np.arange(n)
    rank = 0
    while remaining.size:
        mask = non_dominated_mask(f[remaining])
        ranks[remaining[mask]] = rank
        remaining = remaining[~mask]
        rank += 1
    return ranks


@dataclass(frozen=True)
class ArchiveEntry:
    """One archived design: location, objectives and feasibility."""

    x_unit: np.ndarray
    objectives: np.ndarray
    violation: float
    metrics: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.violation <= 0.0


class ParetoArchive:
    """Incremental archive of constrained-non-dominated designs.

    ``add`` keeps the invariant that entries are mutually non-dominated
    under constrained domination: while no feasible point is known the
    archive holds the least-violating design(s); the first feasible
    point evicts all infeasible ones, and from then on the archive is
    the running Pareto front. Insertion is vectorized against the
    current front (one broadcast comparison per candidate), so archive
    maintenance stays O(|archive| * m) per evaluation.

    The archive is a pure function of the evaluations fed to it —
    :class:`repro.moo.MOMFBOptimizer` rebuilds it from the restored
    history on checkpoint resume instead of serializing it.
    """

    def __init__(self, n_objectives: int) -> None:
        if n_objectives < 2:
            raise ValueError("need at least two objectives")
        self.n_objectives = int(n_objectives)
        self.entries: list[ArchiveEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    def add(
        self,
        x_unit: np.ndarray,
        objectives: np.ndarray,
        violation: float = 0.0,
        metrics: dict | None = None,
    ) -> bool:
        """Offer one evaluated design; returns True when it is archived.

        Rejected candidates (dominated under the constrained rules)
        leave the archive untouched.
        """
        objectives = np.asarray(objectives, dtype=float).ravel().copy()
        if objectives.size != self.n_objectives:
            raise ValueError(
                f"expected {self.n_objectives} objectives, "
                f"got {objectives.size}"
            )
        if not np.all(np.isfinite(objectives)):
            return False
        violation = float(max(violation, 0.0))
        entry = ArchiveEntry(
            x_unit=np.asarray(x_unit, dtype=float).ravel().copy(),
            objectives=objectives,
            violation=violation,
            metrics=dict(metrics or {}),
        )
        if not self.entries:
            self.entries.append(entry)
            return True

        any_feasible = any(e.feasible for e in self.entries)
        if entry.feasible and not any_feasible:
            # First feasible design evicts the violation-ranked phase.
            self.entries = [entry]
            return True
        if not entry.feasible:
            if any_feasible:
                return False
            best = min(e.violation for e in self.entries)
            if entry.violation > best:
                return False
            if entry.violation < best:
                self.entries = [entry]
            else:
                self.entries.append(entry)
            return True

        # Feasible candidate against a feasible front.
        front = self.objectives_matrix()
        le = np.all(front <= objectives[None, :], axis=1)
        lt = np.any(front < objectives[None, :], axis=1)
        if bool(np.any(le & lt)):
            return False
        ge = np.all(objectives[None, :] <= front, axis=1)
        gt = np.any(objectives[None, :] < front, axis=1)
        dominated = ge & gt
        if np.any(dominated):
            self.entries = [
                e for e, drop in zip(self.entries, dominated) if not drop
            ]
        self.entries.append(entry)
        return True

    # ------------------------------------------------------------------
    def objectives_matrix(self) -> np.ndarray:
        """All archived objective vectors as an ``(n, m)`` array."""
        if not self.entries:
            return np.empty((0, self.n_objectives))
        return np.vstack([e.objectives for e in self.entries])

    def front(self) -> np.ndarray:
        """Objective vectors of the **feasible** archive entries."""
        feasible = [e.objectives for e in self.entries if e.feasible]
        if not feasible:
            return np.empty((0, self.n_objectives))
        return np.vstack(feasible)

    def front_entries(self) -> list[ArchiveEntry]:
        """Feasible archive entries (the Pareto-front designs)."""
        return [e for e in self.entries if e.feasible]

    @property
    def has_feasible(self) -> bool:
        return any(e.feasible for e in self.entries)
