"""Exact and Monte-Carlo hypervolume indicators (minimization).

The hypervolume of a point set ``F`` w.r.t. a reference point ``r`` is
the Lebesgue measure of the region dominated by ``F`` and bounded by
``r`` — the standard scalar quality measure of a Pareto front, and the
quantity the ``tab5`` experiment plots against simulation cost.

* 2-D: the classic O(n log n) sweep over the front sorted by the first
  objective.
* 3-D and higher: the WFG algorithm (While, Fleischer, Goodman) — the
  union volume is decomposed into per-point *exclusive* contributions
  ``inclhv(p_k) - hv(limitset)``, with non-dominated pruning of every
  limit set. Exact for any dimension; practical for the front sizes a
  BO archive produces (tens of points).
* :func:`monte_carlo_hypervolume` — a brute-force uniform-sampling
  estimator over the ``[ideal, ref]`` bounding box, used by the
  property tests to pin the exact implementations and by the EHVI
  acquisition as its high-dimensional fallback.

Points that do not strictly dominate the reference point contribute
nothing and are filtered on entry, so callers may pass raw fronts.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng
from .pareto import non_dominated_mask

__all__ = [
    "hypervolume",
    "exclusive_hypervolume",
    "hypervolume_contributions",
    "monte_carlo_hypervolume",
]


def _clean_front(points: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Rows strictly inside the reference box, reduced to their
    non-dominated subset."""
    f = np.atleast_2d(np.asarray(points, dtype=float))
    if f.shape[0] == 0:
        return f.reshape(0, ref.size)
    if f.shape[1] != ref.size:
        raise ValueError(
            f"points have {f.shape[1]} objectives, reference {ref.size}"
        )
    f = f[np.all(f < ref[None, :], axis=1)]
    if f.shape[0] == 0:
        return f
    return f[non_dominated_mask(f)]


def _hv_2d(front: np.ndarray, ref: np.ndarray) -> float:
    """Sweep over the front sorted ascending in the first objective."""
    order = np.lexsort((front[:, 1], front[:, 0]))
    f = front[order]
    volume = 0.0
    b_min = ref[1]
    for a, b in f:
        if b < b_min:
            volume += (ref[0] - a) * (b_min - b)
            b_min = b
    return volume


def _wfg(front: np.ndarray, ref: np.ndarray) -> float:
    """WFG union volume of a non-dominated front inside the ref box."""
    n = front.shape[0]
    if n == 0:
        return 0.0
    if n == 1:
        return float(np.prod(ref - front[0]))
    if front.shape[1] == 2:
        return _hv_2d(front, ref)
    # Sorting by the first objective (descending) makes limit sets
    # collapse quickly, which is where WFG gets its speed.
    order = np.argsort(-front[:, 0])
    f = front[order]
    volume = 0.0
    for k in range(n):
        volume += _exclusive(f[k], f[k + 1:], ref)
    return volume


def _exclusive(point: np.ndarray, others: np.ndarray, ref: np.ndarray) -> float:
    """Volume dominated by ``point`` but by none of ``others``."""
    inclusive = float(np.prod(ref - point))
    if others.shape[0] == 0:
        return inclusive
    limited = np.maximum(others, point[None, :])
    limited = limited[np.all(limited < ref[None, :], axis=1)]
    if limited.shape[0] == 0:
        return inclusive
    limited = limited[non_dominated_mask(limited)]
    return inclusive - _wfg(limited, ref)


def hypervolume(points: np.ndarray, ref: np.ndarray) -> float:
    """Exact hypervolume of ``points`` w.r.t. reference ``ref``.

    ``points`` is ``(n, m)`` with ``m >= 2``; rows outside the reference
    box are ignored. Returns 0 for an empty (or fully out-of-box) set.
    """
    ref = np.asarray(ref, dtype=float).ravel()
    if ref.size < 2:
        raise ValueError("hypervolume needs at least two objectives")
    front = _clean_front(points, ref)
    if front.shape[0] == 0:
        return 0.0
    if ref.size == 2:
        return float(_hv_2d(front, ref))
    return float(_wfg(front, ref))


def exclusive_hypervolume(
    point: np.ndarray, others: np.ndarray, ref: np.ndarray
) -> float:
    """Hypervolume gained by adding ``point`` to the front ``others``.

    Equals ``hypervolume(others + [point]) - hypervolume(others)``
    computed directly from one limit set instead of two full WFG runs —
    the work-horse of both contribution ranking and the Monte-Carlo
    EHVI fallback.
    """
    ref = np.asarray(ref, dtype=float).ravel()
    p = np.asarray(point, dtype=float).ravel()
    if p.size != ref.size:
        raise ValueError(f"point has {p.size} objectives, reference {ref.size}")
    if not np.all(p < ref):
        return 0.0
    others = np.atleast_2d(np.asarray(others, dtype=float))
    if others.shape[0] == 0:
        return float(np.prod(ref - p))
    return float(_exclusive(p, others, ref))


def hypervolume_contributions(
    points: np.ndarray, ref: np.ndarray
) -> np.ndarray:
    """Per-point exclusive hypervolume contributions.

    ``contributions[i]`` is the hypervolume lost by removing point ``i``
    from the set — the ranking :class:`repro.moo.MOMFBOptimizer` uses to
    pick a representative incumbent from its archive. Dominated and
    duplicated points contribute 0.
    """
    ref = np.asarray(ref, dtype=float).ravel()
    f = np.atleast_2d(np.asarray(points, dtype=float))
    n = f.shape[0]
    contributions = np.zeros(n)
    for i in range(n):
        others = np.delete(f, i, axis=0)
        contributions[i] = exclusive_hypervolume(f[i], others, ref)
    return contributions


def monte_carlo_hypervolume(
    points: np.ndarray,
    ref: np.ndarray,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Uniform-sampling hypervolume estimate over the ``[ideal, ref]`` box.

    The dominated region is contained in the box spanned by the
    componentwise minimum of the front and the reference point (every
    dominated ``z`` satisfies ``z >= p >= ideal`` for some front point
    ``p``), so the estimate is unbiased with standard
    ``O(1 / sqrt(n_samples))`` error.
    """
    ref = np.asarray(ref, dtype=float).ravel()
    front = _clean_front(points, ref)
    if front.shape[0] == 0:
        return 0.0
    rng = ensure_rng(rng)
    ideal = front.min(axis=0)
    box = np.prod(ref - ideal)
    samples = rng.uniform(ideal, ref, size=(int(n_samples), ref.size))
    dominated = np.any(
        np.all(front[None, :, :] <= samples[:, None, :], axis=2), axis=1
    )
    return float(box * np.mean(dominated))
