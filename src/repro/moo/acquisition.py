"""Multi-objective acquisition functions: EHVI and ParEGO.

Both reuse the single-objective predictor convention of
:mod:`repro.acquisition`: a *predictor* is a callable
``x -> (mu, var)`` over ``(n, d)`` unit-cube batches, and acquisitions
are batch callables where **larger is better**.

Expected hypervolume improvement
--------------------------------
For two objectives the EHVI has a closed form. With the front sorted
ascending in the first objective, ``a_1 < ... < a_n`` /
``b_1 > ... > b_n``, sentinels ``a_{n+1} = r_1``, ``b_0 = r_2``,
``b_{n+1} = -inf``, and the partial expected improvement

    psi(a, b, mu, s) = E[(a - y) 1{y < b}]
                     = s * phi((b - mu)/s) + (a - mu) * Phi((b - mu)/s)

the improvement region decomposes into vertical strips such that

    EHVI = sum_{j=1}^{n+1} psi(a_j, a_j, mu_1, s_1) *
           [ (b_{j-1} - b_j) Phi((b_j - mu_2)/s_2)
             + psi(b_{j-1}, b_{j-1}, mu_2, s_2)
             - psi(b_{j-1}, b_j,     mu_2, s_2) ]

(Emmerich-style decomposition; independent Gaussian marginals per
objective, the GP-per-objective model of :mod:`repro.moo.optimizer`).
With an empty front this collapses to
``E[(r_1 - y_1)^+] * E[(r_2 - y_2)^+]``. For three or more objectives
the expectation is taken by Monte Carlo with **common random numbers**:
fixed standard-normal draws ``z`` are reused across every candidate so
the acquisition surface is deterministic within one BO iteration, the
same trick the fused NARGP posterior uses.

ParEGO
------
:class:`ParEGOScalarizer` implements the augmented Tchebycheff
scalarization ``max_i(w_i f_i) + rho * sum_i(w_i f_i)`` on objectives
normalized to the observed ``[ideal, nadir]`` box. Each BO iteration
draws a fresh simplex weight vector, scalarizes the history, and reuses
the existing single-objective machinery (GP + fused model + wEI) on the
scalarized target.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy.stats import norm

from ..acquisition.functions import probability_of_feasibility
from .hypervolume import exclusive_hypervolume
from .pareto import non_dominated_mask

__all__ = [
    "ExpectedHypervolumeImprovement",
    "ParEGOScalarizer",
    "draw_simplex_weights",
    "ehvi_2d",
]

Predictor = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]

_MIN_STD = 1e-12


def _psi(
    a: np.ndarray, b: np.ndarray, mu: np.ndarray, sigma: np.ndarray
) -> np.ndarray:
    """Partial expected improvement ``E[(a - y) 1{y < b}]``."""
    lam = (b - mu) / sigma
    return sigma * norm.pdf(lam) + (a - mu) * norm.cdf(lam)


def ehvi_2d(
    mu: np.ndarray,
    var: np.ndarray,
    front: np.ndarray,
    ref: np.ndarray,
) -> np.ndarray:
    """Closed-form bi-objective EHVI for a batch of Gaussian candidates.

    Parameters
    ----------
    mu, var:
        Posterior means/variances of the two objectives, shape
        ``(n_candidates, 2)``; the marginals are treated as independent.
    front:
        Current non-dominated set, shape ``(n_front, 2)`` (may be
        empty). Dominated or out-of-box rows are filtered here.
    ref:
        Reference point ``(2,)``.
    """
    mu = np.atleast_2d(np.asarray(mu, dtype=float))
    sigma = np.sqrt(np.maximum(np.atleast_2d(np.asarray(var, dtype=float)), 0.0))
    sigma = np.maximum(sigma, _MIN_STD)
    ref = np.asarray(ref, dtype=float).ravel()
    front = np.atleast_2d(np.asarray(front, dtype=float))
    if front.size:
        front = front[np.all(front < ref[None, :], axis=1)]
    if front.size:
        front = front[non_dominated_mask(front)]
        front = front[np.argsort(front[:, 0])]

    # Strip bounds: a_j for j = 1..n+1, b_{j-1} and b_j alongside.
    a = np.append(front[:, 0] if front.size else np.empty(0), ref[0])
    b_prev = np.concatenate(
        ([ref[1]], front[:, 1] if front.size else np.empty(0))
    )
    b_next = np.append(front[:, 1] if front.size else np.empty(0), -np.inf)

    mu1, s1 = mu[:, 0:1], sigma[:, 0:1]
    mu2, s2 = mu[:, 1:2], sigma[:, 1:2]

    term1 = _psi(a[None, :], a[None, :], mu1, s1)
    lam_next = (b_next[None, :] - mu2) / s2  # -inf in the last column
    cdf_next = norm.cdf(lam_next)
    psi_prev_prev = _psi(b_prev[None, :], b_prev[None, :], mu2, s2)
    psi_prev_next = s2 * norm.pdf(lam_next) + (b_prev[None, :] - mu2) * cdf_next
    gap = np.where(np.isfinite(b_next), b_prev - b_next, 0.0)
    term2 = gap[None, :] * cdf_next + psi_prev_prev - psi_prev_next

    return np.maximum(np.sum(term1 * term2, axis=1), 0.0)


class ExpectedHypervolumeImprovement:
    """EHVI acquisition over one posterior predictor per objective.

    Parameters
    ----------
    objective_predictors:
        One ``x -> (mu, var)`` callable per (minimized) objective.
    front:
        Current feasible non-dominated objective vectors ``(n, m)``
        (may be empty before any feasible design is known).
    ref_point:
        Hypervolume reference point ``(m,)``.
    constraint_predictors:
        Optional constraint posteriors; the EHVI is multiplied by the
        product of their feasibility probabilities (the eq. 6 treatment
        carried over to the multi-objective acquisition).
    z:
        Fixed standard-normal draws ``(n_mc, m)`` for the Monte-Carlo
        path, **required** when ``m >= 3`` so the acquisition stays
        deterministic across the MSP search of one iteration.
    """

    def __init__(
        self,
        objective_predictors: Sequence[Predictor],
        front: np.ndarray,
        ref_point: np.ndarray,
        constraint_predictors: Sequence[Predictor] = (),
        z: np.ndarray | None = None,
    ) -> None:
        if len(objective_predictors) < 2:
            raise ValueError("EHVI needs at least two objective predictors")
        self.objective_predictors = list(objective_predictors)
        self.constraint_predictors = list(constraint_predictors)
        self.ref_point = np.asarray(ref_point, dtype=float).ravel()
        m = len(self.objective_predictors)
        if self.ref_point.size != m:
            raise ValueError(
                f"reference point has {self.ref_point.size} coordinates "
                f"for {m} objectives"
            )
        front = np.atleast_2d(np.asarray(front, dtype=float))
        if front.size == 0:
            front = np.empty((0, m))
        if front.shape[1] != m:
            raise ValueError(
                f"front has {front.shape[1]} objectives, expected {m}"
            )
        self.front = front
        if m > 2:
            if z is None:
                raise ValueError(
                    "EHVI with 3+ objectives integrates by Monte Carlo; "
                    "pass fixed draws z of shape (n_mc, n_objectives)"
                )
            z = np.atleast_2d(np.asarray(z, dtype=float))
            if z.shape[1] != m:
                raise ValueError(
                    f"z draws have {z.shape[1]} columns for {m} objectives"
                )
        self.z = z

    def _posterior(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mus, sigmas = [], []
        for predictor in self.objective_predictors:
            mu, var = predictor(x)
            mus.append(np.asarray(mu, dtype=float).ravel())
            sigmas.append(
                np.maximum(
                    np.sqrt(np.maximum(np.asarray(var, dtype=float), 0.0)),
                    _MIN_STD,
                ).ravel()
            )
        return np.column_stack(mus), np.column_stack(sigmas)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(x)
        mu, sigma = self._posterior(x)
        if mu.shape[1] == 2:
            value = ehvi_2d(mu, sigma**2, self.front, self.ref_point)
        else:
            value = self._monte_carlo(mu, sigma)
        for predictor in self.constraint_predictors:
            mu_c, var_c = predictor(x)
            value = value * probability_of_feasibility(mu_c, var_c)
        return value

    def _monte_carlo(self, mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
        """Common-random-number MC EHVI for three or more objectives."""
        values = np.zeros(mu.shape[0])
        front = self.front
        ref = self.ref_point
        for i in range(mu.shape[0]):
            samples = mu[i][None, :] + sigma[i][None, :] * self.z
            improvement = 0.0
            for sample in samples:
                improvement += exclusive_hypervolume(sample, front, ref)
            values[i] = improvement / self.z.shape[0]
        return values


def draw_simplex_weights(
    n_objectives: int, rng: np.random.Generator
) -> np.ndarray:
    """One weight vector drawn uniformly from the probability simplex."""
    if n_objectives < 2:
        raise ValueError("need at least two objectives")
    return rng.dirichlet(np.ones(n_objectives))


class ParEGOScalarizer:
    """Augmented Tchebycheff scalarization on normalized objectives.

    ``scalarize`` maps ``(n, m)`` objective vectors to the scalar
    ``max_i(w_i g_i) + rho * sum_i(w_i g_i)`` with
    ``g = (f - ideal) / (nadir - ideal)`` — a minimization target whose
    minimizers sweep the (possibly non-convex) Pareto front as the
    weights sweep the simplex.

    Parameters
    ----------
    weights:
        Simplex weight vector ``(m,)`` (see :func:`draw_simplex_weights`).
    ideal, nadir:
        Normalization bounds, typically the componentwise min/max of all
        objectives observed so far (both fidelities). Degenerate spans
        fall back to 1 so constant objectives do not produce NaNs.
    rho:
        Augmentation coefficient (Knowles' ParEGO uses 0.05).
    """

    def __init__(
        self,
        weights: np.ndarray,
        ideal: np.ndarray,
        nadir: np.ndarray,
        rho: float = 0.05,
    ) -> None:
        self.weights = np.asarray(weights, dtype=float).ravel()
        self.ideal = np.asarray(ideal, dtype=float).ravel()
        span = np.asarray(nadir, dtype=float).ravel() - self.ideal
        self.span = np.where(span > 1e-12, span, 1.0)
        if not (self.weights.size == self.ideal.size == self.span.size):
            raise ValueError("weights/ideal/nadir dimensions disagree")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        self.rho = float(rho)

    def scalarize(self, objectives: np.ndarray) -> np.ndarray:
        """Scalarized value per row of ``(n, m)`` objectives (minimize)."""
        f = np.atleast_2d(np.asarray(objectives, dtype=float))
        normalized = (f - self.ideal[None, :]) / self.span[None, :]
        weighted = self.weights[None, :] * normalized
        return weighted.max(axis=1) + self.rho * weighted.sum(axis=1)
