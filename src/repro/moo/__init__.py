"""Multi-objective multi-fidelity optimization subsystem.

Layers a Pareto-front workflow on top of the existing NARGP/AR1 fusion
models: constrained-domination archive (:mod:`.pareto`), exact and
Monte-Carlo hypervolume indicators (:mod:`.hypervolume`), EHVI and
ParEGO acquisitions (:mod:`.acquisition`), and the
:class:`MOMFBOptimizer` ask/tell strategy (:mod:`.optimizer`).
"""

from .acquisition import (
    ExpectedHypervolumeImprovement,
    ParEGOScalarizer,
    draw_simplex_weights,
    ehvi_2d,
)
from .hypervolume import (
    exclusive_hypervolume,
    hypervolume,
    hypervolume_contributions,
    monte_carlo_hypervolume,
)
from .optimizer import MOMFBOptimizer
from .pareto import (
    ParetoArchive,
    constrained_non_dominated_mask,
    dominates,
    non_dominated_mask,
    non_dominated_sort,
)

__all__ = [
    "MOMFBOptimizer",
    "ParetoArchive",
    "ExpectedHypervolumeImprovement",
    "ParEGOScalarizer",
    "draw_simplex_weights",
    "ehvi_2d",
    "hypervolume",
    "exclusive_hypervolume",
    "hypervolume_contributions",
    "monte_carlo_hypervolume",
    "dominates",
    "non_dominated_mask",
    "constrained_non_dominated_mask",
    "non_dominated_sort",
]
