"""Multi-objective multi-fidelity Bayesian optimizer.

:class:`MOMFBOptimizer` lifts the paper's Algorithm-1 machinery to
vector objectives: one fused NARGP/AR1 model per objective (and per
constraint) on top of the shared two-fidelity data, the eq. 11/12
fidelity-selection rule over the low-fidelity models of *all* outputs,
and the MSP low-then-fused acquisition search — with the scalar wEI
replaced by a multi-objective acquisition:

``acquisition="ehvi"``
    Expected hypervolume improvement over the current Pareto archive
    (closed form for two objectives, common-random-number Monte Carlo
    for three or more), multiplied by the constraint feasibility
    probabilities.
``acquisition="parego"``
    Knowles' ParEGO: each iteration draws a simplex weight vector,
    scalarizes the observed objectives with the augmented Tchebycheff
    function, and runs the existing single-objective wEI path on the
    scalarized target.

The optimizer is an ask/tell :class:`repro.session.Strategy`: it
checkpoints and resumes through :class:`repro.session.OptimizationSession`
bit-for-bit, and ``suggest(k > 1)`` produces distinct batch candidates
via constant-liar fantasization (EHVI: the predicted outcome of each
picked candidate is appended to the working front; ParEGO: every batch
member optimizes a freshly drawn weight vector). The Pareto archive is
a pure function of the evaluation history, so resume rebuilds it
instead of serializing it.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..deprecation import keyword_only_config
from ..acquisition.functions import ViolationAcquisition, WeightedEI
from ..core.fidelity import FidelitySelector
from ..core.history import History, Record
from ..core.strategy import StrategyBase
from ..design.sampling import maximin_latin_hypercube
from ..gp.gpr import GPR
from ..mf.ar1 import AR1
from ..mf.nargp import NARGP
from ..optim.msp import MSPOptimizer
from ..problems.base import FIDELITY_HIGH, FIDELITY_LOW
from ..problems.multi import MultiObjectiveProblem
from ..session.protocol import Suggestion
from .acquisition import (
    ExpectedHypervolumeImprovement,
    ParEGOScalarizer,
    Predictor,
    draw_simplex_weights,
)
from .hypervolume import hypervolume, hypervolume_contributions
from .pareto import ParetoArchive, non_dominated_mask

__all__ = ["MOMFBOptimizer"]


class MOMFBOptimizer(StrategyBase):
    """Constrained multi-objective multi-fidelity Bayesian optimizer.

    Parameters
    ----------
    problem:
        A two-fidelity :class:`repro.problems.MultiObjectiveProblem`.
    budget:
        Total simulation budget in equivalent high-fidelity simulations.
    n_init_low, n_init_high:
        Initial space-filling design sizes per fidelity.
    acquisition:
        ``"ehvi"`` (default) or ``"parego"``.
    ref_point:
        Hypervolume reference point (one coordinate per objective, all
        minimized). ``None`` infers it after the initial design as the
        observed nadir plus a 10% span margin; the inferred point is
        frozen for the rest of the run (and checkpointed) so the
        hypervolume-vs-cost trace stays comparable across iterations.
    gamma:
        Fidelity-promotion threshold of eq. 11/12, applied across the
        low-fidelity models of every objective and constraint.
    n_mc_samples:
        Monte-Carlo draws for the fused NARGP posterior (eq. 10).
    ehvi_mc_samples:
        Monte-Carlo draws for the EHVI integral when the problem has
        three or more objectives (two-objective EHVI is closed-form).
    rho:
        ParEGO augmented-Tchebycheff coefficient.
    fusion:
        ``"nargp"`` (paper) or ``"ar1"`` per-output fusion model.
    Other parameters match :class:`repro.core.MFBOptimizer`.

    Examples
    --------
    >>> from repro.problems import ZDT1Problem
    >>> from repro.moo import MOMFBOptimizer
    >>> optimizer = MOMFBOptimizer(
    ...     ZDT1Problem(), budget=6.0, n_init_low=8, n_init_high=3,
    ...     seed=0, msp_starts=20, msp_polish=0, n_restarts=1,
    ... )
    >>> _ = optimizer.run()
    >>> optimizer.archive.front().shape[1]
    2
    """

    algorithm_name = "MO-MFBO"
    strategy_id = "momfbo"
    rng_stream_names = ("init", "gp", "mc", "acq", "dedup", "scalar")

    @keyword_only_config
    def __init__(
        self,
        problem: MultiObjectiveProblem,
        budget: float = 50.0,
        n_init_low: int = 10,
        n_init_high: int = 5,
        acquisition: str = "ehvi",
        ref_point: list | np.ndarray | None = None,
        gamma: float = 0.01,
        n_mc_samples: int = 20,
        ehvi_mc_samples: int = 16,
        rho: float = 0.05,
        n_restarts: int = 2,
        msp_starts: int = 100,
        msp_polish: int = 3,
        ball_stddev: float = 0.03,
        fusion: str = "nargp",
        gp_max_opt_iter: int = 100,
        max_iterations: int = 10_000,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ) -> None:
        if not isinstance(problem, MultiObjectiveProblem):
            raise TypeError(
                "MOMFBOptimizer needs a MultiObjectiveProblem; got "
                f"{type(problem).__name__}"
            )
        if len(problem.fidelities) != 2:
            raise ValueError(
                "MOMFBOptimizer needs a two-fidelity problem; got "
                f"{problem.fidelities}"
            )
        if budget <= 0:
            raise ValueError("budget must be positive")
        if n_init_low < 1 or n_init_high < 1:
            raise ValueError("initial designs need at least one point each")
        if acquisition not in ("ehvi", "parego"):
            raise ValueError("acquisition must be 'ehvi' or 'parego'")
        if fusion not in ("nargp", "ar1"):
            raise ValueError("fusion must be 'nargp' or 'ar1'")
        if ehvi_mc_samples < 1:
            raise ValueError("ehvi_mc_samples must be >= 1")
        self.budget = float(budget)
        self.n_init_low = int(n_init_low)
        self.n_init_high = int(n_init_high)
        self.acquisition = acquisition
        self.ref_point_config = (
            None
            if ref_point is None
            else [float(v) for v in np.asarray(ref_point, dtype=float).ravel()]
        )
        if self.ref_point_config is not None and len(
            self.ref_point_config
        ) != problem.n_objectives:
            raise ValueError(
                f"reference point needs {problem.n_objectives} coordinates"
            )
        self.n_mc_samples = int(n_mc_samples)
        self.ehvi_mc_samples = int(ehvi_mc_samples)
        self.rho = float(rho)
        self.n_restarts = int(n_restarts)
        self.msp_starts = int(msp_starts)
        self.msp_polish = int(msp_polish)
        self.ball_stddev = float(ball_stddev)
        self.fusion = fusion
        self.gp_max_opt_iter = int(gp_max_opt_iter)
        self.max_iterations = int(max_iterations)
        self._setup_base(problem, seed, rng, callback)
        self.selector = FidelitySelector(gamma=gamma)
        self.acq_optimizer = MSPOptimizer(
            dim=problem.dim,
            n_starts=msp_starts,
            n_polish=msp_polish,
            frac_around_low=0.10,
            frac_around_high=0.40,
            ball_stddev=ball_stddev,
            rng=self._rng_streams["acq"],
        )
        self.archive = ParetoArchive(problem.n_objectives)
        self._ref_point: np.ndarray | None = None

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    def _initial_suggestions(self) -> list[Suggestion]:
        rng = self._rng_streams["init"]
        init_low = maximin_latin_hypercube(
            self.n_init_low, self.problem.dim, rng
        )
        init_high = maximin_latin_hypercube(
            self.n_init_high, self.problem.dim, rng
        )
        return [Suggestion(u, FIDELITY_LOW) for u in init_low] + [
            Suggestion(u, FIDELITY_HIGH) for u in init_high
        ]

    # ------------------------------------------------------------------
    # data plumbing
    # ------------------------------------------------------------------
    def _moo_data(
        self, fidelity: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Training arrays ``(x, objectives, constraints)`` at one fidelity."""
        records = self.history.records_at(fidelity)
        if not records:
            raise ValueError(f"no evaluations at fidelity {fidelity!r}")
        x = np.vstack([r.x_unit for r in records])
        objectives = np.vstack([r.evaluation.objectives for r in records])
        if records[0].evaluation.constraints.size:
            constraints = np.vstack(
                [r.evaluation.constraints for r in records]
            )
        else:
            constraints = np.empty((len(records), 0))
        return x, objectives, constraints

    def _all_objectives(self) -> np.ndarray:
        return np.vstack(
            [r.evaluation.objectives for r in self.history.records]
        )

    def _infer_ref_point(self) -> np.ndarray:
        """Config override, else observed nadir plus a 10% span margin."""
        if self.ref_point_config is not None:
            return np.asarray(self.ref_point_config, dtype=float)
        observed = self._all_objectives()
        observed = observed[np.all(np.isfinite(observed), axis=1)]
        if observed.shape[0] == 0:
            raise RuntimeError(
                "cannot infer a reference point: no finite objectives "
                "observed; pass ref_point explicitly"
            )
        nadir = observed.max(axis=0)
        span = observed.max(axis=0) - observed.min(axis=0)
        return nadir + 0.1 * np.where(span > 1e-12, span, 1.0)

    def _fidelity_front(
        self, fidelity: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Feasible non-dominated ``(x, objectives)`` at one fidelity."""
        records = [
            r for r in self.history.records_at(fidelity) if r.feasible
        ]
        m = self.problem.n_objectives
        if not records:
            return np.empty((0, self.problem.dim)), np.empty((0, m))
        x = np.vstack([r.x_unit for r in records])
        objectives = np.vstack([r.evaluation.objectives for r in records])
        mask = non_dominated_mask(objectives)
        return x[mask], objectives[mask]

    def _front_incumbent(
        self, x_front: np.ndarray, objectives: np.ndarray
    ) -> np.ndarray | None:
        """Representative incumbent: the max-contribution front member."""
        if x_front.shape[0] == 0 or self._ref_point is None:
            return None
        contributions = hypervolume_contributions(objectives, self._ref_point)
        return x_front[int(np.argmax(contributions))]

    # ------------------------------------------------------------------
    # model fitting
    # ------------------------------------------------------------------
    def _fit_pairs(
        self,
        x_low: np.ndarray,
        targets_low: list[np.ndarray],
        x_high: np.ndarray,
        targets_high: list[np.ndarray],
    ) -> tuple[list[GPR], list]:
        """One (low GP, fused model) pair per target column."""
        rng = self._rng_streams["gp"]
        low_models: list[GPR] = []
        fused_models: list = []
        for t_low, t_high in zip(targets_low, targets_high):
            low_gp = GPR(max_opt_iter=self.gp_max_opt_iter).fit(
                x_low, t_low, n_restarts=self.n_restarts, rng=rng
            )
            low_models.append(low_gp)
            if self.fusion == "nargp":
                fused = NARGP(
                    n_mc_samples=self.n_mc_samples,
                    n_restarts=self.n_restarts,
                    max_opt_iter=self.gp_max_opt_iter,
                )
            else:
                fused = AR1(n_restarts=self.n_restarts)
            fused.fit(
                x_low, t_low, x_high, t_high, rng=rng, low_model=low_gp
            )
            fused_models.append(fused)
        return low_models, fused_models

    def _fit_objective_models(self) -> tuple[list[GPR], list]:
        """EHVI path: objectives first, then one pair per constraint."""
        x_low, f_low, c_low = self._moo_data(FIDELITY_LOW)
        x_high, f_high, c_high = self._moo_data(FIDELITY_HIGH)
        targets_low = [f_low[:, i] for i in range(f_low.shape[1])] + [
            c_low[:, i] for i in range(c_low.shape[1])
        ]
        targets_high = [f_high[:, i] for i in range(f_high.shape[1])] + [
            c_high[:, i] for i in range(c_high.shape[1])
        ]
        return self._fit_pairs(x_low, targets_low, x_high, targets_high)

    def _make_scalarizer(self, weights: np.ndarray) -> ParEGOScalarizer:
        observed = self._all_objectives()
        observed = observed[np.all(np.isfinite(observed), axis=1)]
        return ParEGOScalarizer(
            weights,
            ideal=observed.min(axis=0),
            nadir=observed.max(axis=0),
            rho=self.rho,
        )

    def _fit_constraint_models(self) -> tuple[list[GPR], list]:
        """One (low GP, fused) pair per constraint; independent of the
        ParEGO weight vector, so fit once per iteration and shared by
        every batch member."""
        x_low, _, c_low = self._moo_data(FIDELITY_LOW)
        x_high, _, c_high = self._moo_data(FIDELITY_HIGH)
        targets_low = [c_low[:, i] for i in range(c_low.shape[1])]
        targets_high = [c_high[:, i] for i in range(c_high.shape[1])]
        return self._fit_pairs(x_low, targets_low, x_high, targets_high)

    def _fit_scalarized_models(
        self,
        scalarizer: ParEGOScalarizer,
        constraint_pairs: tuple[list[GPR], list],
    ) -> tuple[list[GPR], list]:
        """ParEGO path: the scalarized target, then the shared
        constraint models."""
        x_low, f_low, _ = self._moo_data(FIDELITY_LOW)
        x_high, f_high, _ = self._moo_data(FIDELITY_HIGH)
        obj_low, obj_fused = self._fit_pairs(
            x_low, [scalarizer.scalarize(f_low)],
            x_high, [scalarizer.scalarize(f_high)],
        )
        con_low, con_fused = constraint_pairs
        return obj_low + con_low, obj_fused + con_fused

    # ------------------------------------------------------------------
    # acquisition assembly
    # ------------------------------------------------------------------
    @staticmethod
    def _gp_predictor(model: GPR) -> Predictor:
        return lambda x: model.predict(x)

    @staticmethod
    def _fused_predictor(model: NARGP | AR1, z: np.ndarray) -> Predictor:
        return lambda x: model.predict(x, z=z)

    def _build_ehvi(
        self,
        predictors: list,
        front: np.ndarray,
        any_feasible: bool,
        z_ehvi: np.ndarray | None,
    ) -> ExpectedHypervolumeImprovement | ViolationAcquisition:
        """EHVI over the feasible front, or eq. 13 while none exists."""
        m = self.problem.n_objectives
        objective_predictors = predictors[:m]
        constraint_predictors = predictors[m:]
        if constraint_predictors and not any_feasible:
            return ViolationAcquisition(constraint_predictors)
        return ExpectedHypervolumeImprovement(
            objective_predictors,
            front,
            self._ref_point,
            constraint_predictors=constraint_predictors,
            z=z_ehvi,
        )

    def _build_wei(
        self, predictors: list, tau: float | None, any_feasible: bool
    ) -> WeightedEI | ViolationAcquisition:
        objective_predictor = predictors[0]
        constraint_predictors = predictors[1:]
        if any_feasible or not constraint_predictors:
            return WeightedEI(objective_predictor, constraint_predictors, tau)
        return ViolationAcquisition(constraint_predictors)

    # ------------------------------------------------------------------
    # suggestion
    # ------------------------------------------------------------------
    def _propose_ehvi(
        self,
        low_models: list[GPR],
        fused_models: list,
        z_fused: np.ndarray,
        z_ehvi: np.ndarray | None,
        fantasy_front: list[np.ndarray],
        avoid: list[np.ndarray],
    ) -> tuple[np.ndarray, float]:
        x_low_front, f_low_front = self._fidelity_front(FIDELITY_LOW)
        x_high_front, f_high_front = (
            self._archive_x_front(),
            self.archive.front(),
        )
        if fantasy_front:
            f_high_front = (
                np.vstack([f_high_front, *fantasy_front])
                if f_high_front.size
                else np.vstack(fantasy_front)
            )
        incumbent_low = self._front_incumbent(x_low_front, f_low_front)
        incumbent_high = self._front_incumbent(
            x_high_front, self.archive.front()
        )

        low_predictors = [self._gp_predictor(m) for m in low_models]
        low_acq = self._build_ehvi(
            low_predictors, f_low_front, f_low_front.shape[0] > 0, z_ehvi
        )
        low_result = self.acq_optimizer.maximize(
            low_acq,
            incumbent_low=incumbent_low,
            incumbent_high=incumbent_high,
        )

        fused_predictors = [
            self._fused_predictor(m, z_fused) for m in fused_models
        ]
        high_acq = self._build_ehvi(
            fused_predictors,
            f_high_front,
            self.archive.has_feasible,
            z_ehvi,
        )
        high_result = self.acq_optimizer.maximize(
            high_acq,
            incumbent_low=incumbent_low,
            incumbent_high=incumbent_high,
            extra_starts=low_result.x,
        )
        return self._dedup(high_result.x, avoid=avoid), float(high_result.value)

    def _archive_x_front(self) -> np.ndarray:
        entries = self.archive.front_entries()
        if not entries:
            return np.empty((0, self.problem.dim))
        return np.vstack([e.x_unit for e in entries])

    def _propose_parego(
        self,
        scalarizer: ParEGOScalarizer,
        low_models: list[GPR],
        fused_models: list,
        z_fused: np.ndarray,
        avoid: list[np.ndarray],
    ) -> tuple[np.ndarray, float]:
        def best_scalarized(
            fidelity: str,
        ) -> tuple[float | None, np.ndarray | None]:
            records = [
                r
                for r in self.history.records_at(fidelity)
                if r.feasible
            ]
            if not records:
                return None, None
            values = scalarizer.scalarize(
                np.vstack([r.evaluation.objectives for r in records])
            )
            best = int(np.argmin(values))
            return float(values[best]), records[best].x_unit

        tau_low, incumbent_low = best_scalarized(FIDELITY_LOW)
        tau_high, incumbent_high = best_scalarized(FIDELITY_HIGH)

        low_predictors = [self._gp_predictor(m) for m in low_models]
        low_acq = self._build_wei(low_predictors, tau_low, tau_low is not None)
        low_result = self.acq_optimizer.maximize(
            low_acq,
            incumbent_low=incumbent_low,
            incumbent_high=incumbent_high,
        )

        fused_predictors = [
            self._fused_predictor(m, z_fused) for m in fused_models
        ]
        high_acq = self._build_wei(
            fused_predictors, tau_high, tau_high is not None
        )
        high_result = self.acq_optimizer.maximize(
            high_acq,
            incumbent_low=incumbent_low,
            incumbent_high=incumbent_high,
            extra_starts=low_result.x,
        )
        return self._dedup(high_result.x, avoid=avoid), float(high_result.value)

    def _refill(self, k: int) -> None:
        """One BO iteration producing up to ``k`` batch candidates."""
        self._iteration += 1
        if self._ref_point is None:
            self._ref_point = self._infer_ref_point()
        m = self.problem.n_objectives
        z_fused = self._rng_streams["mc"].standard_normal(self.n_mc_samples)
        z_ehvi = None
        scalarizer = None
        fit_start = time.perf_counter()
        if self.acquisition == "ehvi":
            low_models, fused_models = self._fit_objective_models()
            if m > 2:
                z_ehvi = self._rng_streams["scalar"].standard_normal(
                    (self.ehvi_mc_samples, m)
                )
        else:
            weights = draw_simplex_weights(m, self._rng_streams["scalar"])
            scalarizer = self._make_scalarizer(weights)
            constraint_pairs = self._fit_constraint_models()
            low_models, fused_models = self._fit_scalarized_models(
                scalarizer, constraint_pairs
            )
        fit_elapsed = time.perf_counter() - fit_start

        propose_start = time.perf_counter()
        chosen: list[str] = []
        first_acq: float | None = None
        projected = self.history.total_cost + self.pending_cost
        avoid: list[np.ndarray] = []
        fantasy_front: list[np.ndarray] = []
        # In-flight suggestions (asynchronous evaluators): count their
        # budget, avoid re-proposing them and — on the EHVI path — lie
        # about their outcome with the fused posterior mean so the batch
        # targets untouched parts of the front. Empty for synchronous
        # drivers, keeping serial trajectories bit-identical. Observed
        # results retract their pending entry, so the next refill swaps
        # each fantasy for the real outcome.
        for s in self._pending:
            x_pending = np.asarray(s.x_unit, dtype=float).ravel()
            avoid.append(x_pending)
            if self.acquisition == "ehvi":
                x2 = x_pending[None, :]
                fantasy_front.append(
                    np.array(
                        [
                            float(model.predict_mean_path(x2)[0][0])
                            for model in fused_models[:m]
                        ]
                    )
                )
        for j in range(k):
            if j > 0 and self.acquisition == "parego":
                # Classic ParEGO batching: each member optimizes its own
                # scalarization direction (constraint models are shared).
                weights = draw_simplex_weights(
                    m, self._rng_streams["scalar"]
                )
                scalarizer = self._make_scalarizer(weights)
                low_models, fused_models = self._fit_scalarized_models(
                    scalarizer, constraint_pairs
                )
            if self.acquisition == "ehvi":
                x_next, acq_value = self._propose_ehvi(
                    low_models, fused_models, z_fused, z_ehvi,
                    fantasy_front, avoid,
                )
            else:
                x_next, acq_value = self._propose_parego(
                    scalarizer, low_models, fused_models, z_fused, avoid
                )
            if first_acq is None:
                first_acq = acq_value

            fidelity = self.selector.select(x_next, low_models)
            remaining = self.budget - projected
            if self.problem.cost(fidelity) > remaining + 1e-9:
                if self.problem.cost(FIDELITY_LOW) <= remaining + 1e-9:
                    fidelity = FIDELITY_LOW
                else:
                    self._stopped = True
                    break
            self._queue.append(Suggestion(x_next, fidelity))
            chosen.append(fidelity)
            avoid.append(x_next)
            projected += self.problem.cost(fidelity)
            if j < k - 1 and self.acquisition == "ehvi":
                # Constant liar: believe the fused posterior mean of the
                # picked point so the next member targets a different
                # part of the front.
                x2 = x_next[None, :]
                fantasy_front.append(
                    np.array(
                        [
                            float(model.predict_mean_path(x2)[0][0])
                            for model in fused_models[:m]
                        ]
                    )
                )
        self._emit_telemetry(
            "iteration",
            fit_s=fit_elapsed,
            propose_s=time.perf_counter() - propose_start,
            fidelity=chosen[0] if chosen else None,
            n_suggested=len(chosen),
            acq=first_acq,
            budget_spent=float(projected),
        )

    def _done(self) -> bool:
        return (
            self.history.total_cost >= self.budget - 1e-9
            or self._iteration >= self.max_iterations
        )

    # ------------------------------------------------------------------
    # observation / archive maintenance
    # ------------------------------------------------------------------
    def _after_observe(self, record: Record) -> None:
        evaluation = record.evaluation
        if record.fidelity == self.problem.highest_fidelity:
            self.archive.add(
                record.x_unit,
                evaluation.objectives,
                evaluation.total_violation,
                evaluation.metrics,
            )
        super()._after_observe(record)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def ref_point(self) -> np.ndarray | None:
        """The frozen hypervolume reference point (None before set)."""
        return self._ref_point

    def hypervolume_trace(self) -> np.ndarray:
        """``(n, 2)`` columns ``(cumulative_cost, archive_hypervolume)``.

        One row per high-fidelity evaluation, replayed from the history
        — a pure function of (history, reference point), so the trace of
        a resumed run matches the uninterrupted one exactly.
        """
        if self._ref_point is None:
            return np.empty((0, 2))
        archive = ParetoArchive(self.problem.n_objectives)
        rows, cost = [], 0.0
        for record in self.history.records:
            cost += record.evaluation.cost
            if record.fidelity != self.problem.highest_fidelity:
                continue
            evaluation = record.evaluation
            archive.add(
                record.x_unit,
                evaluation.objectives,
                evaluation.total_violation,
            )
            rows.append(
                (cost, hypervolume(archive.front(), self._ref_point))
            )
        return np.array(rows) if rows else np.empty((0, 2))

    def pareto_summary(self) -> list[dict]:
        """Physical-unit view of the archived front for reporting."""
        summary = []
        for entry in self.archive.front_entries():
            summary.append(
                {
                    "x": self.problem.space.from_unit(entry.x_unit),
                    "objectives": entry.objectives.copy(),
                    "metrics": dict(entry.metrics),
                }
            )
        return summary

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def config_dict(self) -> dict:
        return {
            "budget": self.budget,
            "n_init_low": self.n_init_low,
            "n_init_high": self.n_init_high,
            "acquisition": self.acquisition,
            "ref_point": self.ref_point_config,
            "gamma": self.selector.gamma,
            "n_mc_samples": self.n_mc_samples,
            "ehvi_mc_samples": self.ehvi_mc_samples,
            "rho": self.rho,
            "n_restarts": self.n_restarts,
            "msp_starts": self.msp_starts,
            "msp_polish": self.msp_polish,
            "ball_stddev": self.ball_stddev,
            "fusion": self.fusion,
            "gp_max_opt_iter": self.gp_max_opt_iter,
            "max_iterations": self.max_iterations,
        }

    def _extra_state(self) -> dict:
        """Only the frozen reference point; the archive is rebuilt."""
        return {
            "ref_point": (
                None
                if self._ref_point is None
                else [float(v) for v in self._ref_point]
            )
        }

    def _load_extra_state(self, extra: dict) -> None:
        ref = extra.get("ref_point")
        self._ref_point = (
            None if ref is None else np.asarray(ref, dtype=float)
        )
        archive = ParetoArchive(self.problem.n_objectives)
        for record in self.history.records:
            if record.fidelity != self.problem.highest_fidelity:
                continue
            evaluation = record.evaluation
            archive.add(
                record.x_unit,
                evaluation.objectives,
                evaluation.total_violation,
                evaluation.metrics,
            )
        self.archive = archive
