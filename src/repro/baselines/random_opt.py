"""Random search — the sanity-check baseline.

Uniform random sampling at the highest fidelity, wrapped in the ask/tell
:class:`repro.session.Strategy` protocol. No model, no state beyond the
history and one RNG stream — which also makes it the simplest reference
implementation of a session strategy (and trivially batchable:
``suggest(k)`` returns ``k`` independent points).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..deprecation import keyword_only_config
from ..core.history import History
from ..core.strategy import StrategyBase
from ..design.sampling import maximin_latin_hypercube, uniform
from ..problems.base import Problem
from ..session.protocol import Suggestion

__all__ = ["RandomSearchOptimizer"]


class RandomSearchOptimizer(StrategyBase):
    """Uniform random search at the highest fidelity.

    Parameters
    ----------
    problem:
        Problem to optimize (highest fidelity only).
    budget:
        Total number of simulations, including the initial design.
    n_init:
        Initial Latin-hypercube design size (the remaining budget is
        spent on i.i.d. uniform draws).
    """

    algorithm_name = "Random"
    strategy_id = "random_search"
    rng_stream_names = ("init", "sample")

    @keyword_only_config
    def __init__(
        self,
        problem: Problem,
        budget: int = 100,
        n_init: int = 10,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ):
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        if budget < n_init:
            raise ValueError("budget must cover the initial design")
        self.budget = int(budget)
        self.n_init = int(n_init)
        self._setup_base(problem, seed, rng, callback)
        self._fidelity = problem.highest_fidelity

    # ------------------------------------------------------------------
    # ask/tell hooks
    # ------------------------------------------------------------------
    def _initial_suggestions(self) -> list[Suggestion]:
        design = maximin_latin_hypercube(
            self.n_init, self.problem.dim, self._rng_streams["init"]
        )
        return [Suggestion(u, self._fidelity) for u in design]

    def _refill(self, k: int) -> None:
        remaining = self.budget - self.history.n_evaluations(self._fidelity)
        m = min(k, remaining)
        if m <= 0:
            return
        self._iteration += 1
        points = uniform(m, self.problem.dim, self._rng_streams["sample"])
        self._queue.extend(Suggestion(u, self._fidelity) for u in points)

    def _done(self) -> bool:
        return self.history.n_evaluations(self._fidelity) >= self.budget

    # ------------------------------------------------------------------
    def config_dict(self) -> dict:
        return {"budget": self.budget, "n_init": self.n_init}
