"""Baseline optimizers the paper compares against (§5)."""

from .de_opt import DEOptimizer
from .gaspad import GASPAD
from .weibo import WEIBO

__all__ = ["WEIBO", "GASPAD", "DEOptimizer"]
