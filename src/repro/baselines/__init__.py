"""Baseline optimizers the paper compares against (§5).

All baselines implement the ask/tell :class:`repro.session.Strategy`
protocol and can be driven by an
:class:`repro.session.OptimizationSession` (their ``run()`` methods are
thin wrappers over one).
"""

from .de_opt import DEOptimizer
from .gaspad import GASPAD
from .random_opt import RandomSearchOptimizer
from .weibo import WEIBO

__all__ = ["WEIBO", "GASPAD", "DEOptimizer", "RandomSearchOptimizer"]
