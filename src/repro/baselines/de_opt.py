"""DE — simulation-driven differential evolution baseline.

The pure evolutionary baseline of the paper's evaluation (Liu et al.
2009 style, ref. [15]): classic rand/1/bin differential evolution where
every trial vector is evaluated with a true simulation, and selection
uses Deb's feasibility rules for the constraints.

Implements the ask/tell :class:`repro.session.Strategy` protocol. DE is
naturally batched: ``suggest`` hands out the current generation's trial
vectors (up to ``k`` at a time, so a parallel evaluator can simulate a
whole generation at once), and the greedy one-to-one selection runs
when the last member of the generation is observed — which is why
observations must be fed back in suggestion order.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..deprecation import keyword_only_config
from ..core.history import History, Record
from ..core.strategy import StrategyBase
from ..design.sampling import maximin_latin_hypercube
from ..optim.de import DifferentialEvolution, deb_fitness
from ..problems.base import Problem
from ..session.protocol import Suggestion

__all__ = ["DEOptimizer"]


class DEOptimizer(StrategyBase):
    """Simulation-in-the-loop differential evolution.

    Parameters
    ----------
    problem:
        Problem to optimize (highest fidelity only).
    budget:
        Total number of simulations including the initial population
        (paper: 10100 with 100 initial points for the charge pump).
    pop_size:
        Population size.
    """

    algorithm_name = "DE"
    strategy_id = "de"
    rng_stream_names = ("init", "de")

    @keyword_only_config
    def __init__(
        self,
        problem: Problem,
        budget: int = 300,
        pop_size: int = 20,
        differential_weight: float = 0.8,
        crossover_rate: float = 0.9,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ):
        if budget < pop_size:
            raise ValueError("budget must cover the initial population")
        self.budget = int(budget)
        self.pop_size = int(pop_size)
        self.differential_weight = float(differential_weight)
        self.crossover_rate = float(crossover_rate)
        self._setup_base(problem, seed, rng, callback)
        self.engine = DifferentialEvolution(
            dim=problem.dim,
            pop_size=pop_size,
            differential_weight=differential_weight,
            crossover_rate=crossover_rate,
            rng=self._rng_streams["de"],
        )
        self._fidelity = problem.highest_fidelity
        # Per-generation observation buffers: selection needs the whole
        # generation's fitness at once.
        self._gen_objectives: list[float] = []
        self._gen_violations: list[float] = []
        self._gen_initial = True

    # ------------------------------------------------------------------
    # ask/tell hooks
    # ------------------------------------------------------------------
    def _initial_suggestions(self) -> list[Suggestion]:
        initial = maximin_latin_hypercube(
            self.pop_size, self.problem.dim, self._rng_streams["init"]
        )
        self.engine.initialize(initial)
        self._gen_initial = True
        return [Suggestion(u, self._fidelity) for u in initial]

    def _refill(self, k: int) -> None:
        if self._selection_pending:
            # Outstanding observations; selection has not run yet, so no
            # new trials can be generated.
            return
        self._iteration += 1
        trials = self.engine.ask()
        self._queue.extend(Suggestion(u, self._fidelity) for u in trials)

    def _after_observe(self, record: Record) -> None:
        self._gen_objectives.append(record.objective)
        self._gen_violations.append(record.evaluation.total_violation)
        if len(self._gen_objectives) < self.pop_size:
            return
        fitness = deb_fitness(
            np.asarray(self._gen_objectives),
            np.asarray(self._gen_violations),
        )
        self.engine.tell(fitness, initial=self._gen_initial)
        self._gen_objectives = []
        self._gen_violations = []
        was_initial, self._gen_initial = self._gen_initial, False
        if self.callback is not None and not was_initial:
            self.callback(self._iteration, self.history)

    @property
    def _selection_pending(self) -> bool:
        """True while a generation awaits observations or selection.

        Covers the initial population (``fitness`` unset until its
        ``tell``), a pending :meth:`DifferentialEvolution.ask` whose
        trials have not all been observed, and partially filled
        observation buffers.
        """
        return (
            bool(self._gen_objectives)
            or self.engine.fitness is None
            or self.engine._pending_trials is not None
        )

    def _done(self) -> bool:
        if self._selection_pending:
            return False
        return (
            self.history.n_evaluations(self._fidelity) + self.pop_size
            > self.budget
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def config_dict(self) -> dict:
        return {
            "budget": self.budget,
            "pop_size": self.pop_size,
            "differential_weight": self.differential_weight,
            "crossover_rate": self.crossover_rate,
        }

    def _extra_state(self) -> dict:
        engine = self.engine
        return {
            "population": (
                None if engine.population is None else engine.population.tolist()
            ),
            "fitness": (
                None if engine.fitness is None else engine.fitness.tolist()
            ),
            "pending_trials": (
                None
                if engine._pending_trials is None
                else engine._pending_trials.tolist()
            ),
            "gen_objectives": list(self._gen_objectives),
            "gen_violations": list(self._gen_violations),
            "gen_initial": self._gen_initial,
        }

    def _load_extra_state(self, extra: dict) -> None:
        engine = self.engine
        engine.population = (
            None
            if extra["population"] is None
            else np.asarray(extra["population"], dtype=float)
        )
        engine.fitness = (
            None
            if extra["fitness"] is None
            else np.asarray(extra["fitness"], dtype=float)
        )
        engine._pending_trials = (
            None
            if extra["pending_trials"] is None
            else np.asarray(extra["pending_trials"], dtype=float)
        )
        self._gen_objectives = [float(v) for v in extra["gen_objectives"]]
        self._gen_violations = [float(v) for v in extra["gen_violations"]]
        self._gen_initial = bool(extra["gen_initial"])
