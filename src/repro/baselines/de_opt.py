"""DE — simulation-driven differential evolution baseline.

The pure evolutionary baseline of the paper's evaluation (Liu et al.
2009 style, ref. [15]): classic rand/1/bin differential evolution where
every trial vector is evaluated with a true simulation, and selection
uses Deb's feasibility rules for the constraints.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.history import History
from ..core.result import BOResult
from ..design.sampling import maximin_latin_hypercube
from ..optim.de import DifferentialEvolution, deb_fitness
from ..problems.base import Problem

__all__ = ["DEOptimizer"]


class DEOptimizer:
    """Simulation-in-the-loop differential evolution.

    Parameters
    ----------
    problem:
        Problem to optimize (highest fidelity only).
    budget:
        Total number of simulations including the initial population
        (paper: 10100 with 100 initial points for the charge pump).
    pop_size:
        Population size.
    """

    algorithm_name = "DE"

    def __init__(
        self,
        problem: Problem,
        budget: int = 300,
        pop_size: int = 20,
        differential_weight: float = 0.8,
        crossover_rate: float = 0.9,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ):
        if budget < pop_size:
            raise ValueError("budget must cover the initial population")
        self.problem = problem
        self.budget = int(budget)
        self.pop_size = int(pop_size)
        self.callback = callback
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.engine = DifferentialEvolution(
            dim=problem.dim,
            pop_size=pop_size,
            differential_weight=differential_weight,
            crossover_rate=crossover_rate,
            rng=self.rng,
        )
        self.history = History()
        self._fidelity = problem.highest_fidelity

    # ------------------------------------------------------------------
    def _evaluate_batch(
        self, points: np.ndarray, iteration: int
    ) -> np.ndarray:
        """Simulate a batch, log it, and return Deb-scalarized fitness."""
        objectives = np.empty(points.shape[0])
        violations = np.empty(points.shape[0])
        for i, u in enumerate(points):
            evaluation = self.problem.evaluate_unit(u, self._fidelity)
            self.history.add(u, evaluation, iteration=iteration)
            objectives[i] = evaluation.objective
            violations[i] = evaluation.total_violation
        return deb_fitness(objectives, violations)

    def run(self) -> BOResult:
        """Evolve until the simulation budget is exhausted."""
        initial = maximin_latin_hypercube(
            self.pop_size, self.problem.dim, self.rng
        )
        self.engine.initialize(initial)
        self.engine.tell(self._evaluate_batch(initial, iteration=0), initial=True)
        iteration = 0
        while (
            self.history.n_evaluations(self._fidelity) + self.pop_size
            <= self.budget
        ):
            iteration += 1
            trials = self.engine.ask()
            self.engine.tell(self._evaluate_batch(trials, iteration))
            if self.callback is not None:
                self.callback(iteration, self.history)
        return BOResult.from_history(
            self.problem, self.history, self.algorithm_name
        )
