"""GASPAD — surrogate-assisted evolutionary optimization baseline.

Re-implementation of the structure of Liu et al., TCAD 2014 (paper
ref. [16]): differential-evolution variation operators generate candidate
designs, a GP surrogate *prescreens* them with a lower-confidence-bound
criterion, and only the most promising candidate per generation receives
a true (expensive) simulation.

Constraint handling follows the feasibility-rule style the original uses:
candidates are ranked by Deb's tournament on the LCB of the objective and
the predicted total constraint violation.

Implements the ask/tell :class:`repro.session.Strategy` protocol;
``suggest(k > 1)`` hands out the ``k`` best-ranked *distinct* candidates
of one prescreened generation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..deprecation import keyword_only_config
from ..acquisition.functions import lower_confidence_bound
from ..core.history import History
from ..core.strategy import StrategyBase
from ..design.sampling import maximin_latin_hypercube
from ..gp.gpr import GPR
from ..optim.de import DifferentialEvolution, deb_fitness
from ..problems.base import Problem
from ..session.protocol import Suggestion

__all__ = ["GASPAD"]


class GASPAD(StrategyBase):
    """GP + DE surrogate-assisted evolutionary algorithm.

    Parameters
    ----------
    problem:
        Problem to optimize (highest fidelity only).
    budget:
        Number of true simulations, including the initial design.
    n_init:
        Initial Latin-hypercube design size (paper: 120 for the charge
        pump, also used to seed the evolutionary population).
    pop_size:
        Evolutionary population size (the ``pop_size`` best simulated
        points so far).
    n_candidates_per_parent:
        DE trial vectors generated per population member and prescreened
        by the surrogate each generation.
    beta:
        LCB exploration weight.
    """

    algorithm_name = "GASPAD"
    strategy_id = "gaspad"
    rng_stream_names = ("init", "gp", "de")

    @keyword_only_config
    def __init__(
        self,
        problem: Problem,
        budget: int = 300,
        n_init: int = 40,
        pop_size: int = 20,
        n_candidates_per_parent: int = 3,
        beta: float = 2.0,
        n_restarts: int = 1,
        gp_max_opt_iter: int = 100,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ):
        if budget < n_init:
            raise ValueError("budget must cover the initial design")
        if pop_size < 4:
            raise ValueError("pop_size must be >= 4 for DE operators")
        if n_candidates_per_parent < 1:
            raise ValueError("n_candidates_per_parent must be >= 1")
        self.budget = int(budget)
        self.n_init = int(n_init)
        self.pop_size = int(pop_size)
        self.n_candidates_per_parent = int(n_candidates_per_parent)
        self.beta = float(beta)
        self.n_restarts = int(n_restarts)
        self.gp_max_opt_iter = int(gp_max_opt_iter)
        self._setup_base(problem, seed, rng, callback)
        self._fidelity = problem.highest_fidelity

    # ------------------------------------------------------------------
    def _population(self) -> np.ndarray:
        """The ``pop_size`` best simulated points under Deb's rules."""
        x, y, constraints = self.history.data(self._fidelity)
        violation = (
            np.sum(np.maximum(constraints, 0.0), axis=1)
            if constraints.size
            else np.zeros(y.shape)
        )
        fitness = deb_fitness(y, violation)
        order = np.argsort(fitness)
        return x[order[: self.pop_size]]

    def _generate_candidates(self, population: np.ndarray) -> np.ndarray:
        """DE rand/1/bin trials from the elite population."""
        engine = DifferentialEvolution(
            dim=self.problem.dim,
            pop_size=max(4, population.shape[0]),
            rng=self._rng_streams["de"],
        )
        pop = population
        if pop.shape[0] < 4:  # pad tiny populations by resampling
            extra = pop[
                self._rng_streams["de"].integers(
                    pop.shape[0], size=4 - pop.shape[0]
                )
            ]
            pop = np.vstack([pop, extra])
        engine.initialize(pop)
        engine.tell(np.zeros(pop.shape[0]), initial=True)
        trials = [engine.ask() for _ in range(self.n_candidates_per_parent)]
        return np.vstack(trials)

    def _prescreen(self, candidates: np.ndarray) -> np.ndarray:
        """Rank candidates by surrogate LCB + predicted violation."""
        rng = self._rng_streams["gp"]
        x, y, constraints = self.history.data(self._fidelity)
        objective_gp = GPR(max_opt_iter=self.gp_max_opt_iter).fit(
            x, y, n_restarts=self.n_restarts, rng=rng
        )
        mu, var = objective_gp.predict(candidates)
        lcb = lower_confidence_bound(mu, var, self.beta)
        violation = np.zeros(candidates.shape[0])
        for i in range(constraints.shape[1]):
            constraint_gp = GPR(max_opt_iter=self.gp_max_opt_iter).fit(
                x, constraints[:, i], n_restarts=self.n_restarts, rng=rng
            )
            mu_c, var_c = constraint_gp.predict(candidates)
            violation += np.maximum(
                0.0, lower_confidence_bound(mu_c, var_c, self.beta)
            )
        return deb_fitness(lcb, violation)

    # ------------------------------------------------------------------
    # ask/tell hooks
    # ------------------------------------------------------------------
    def _initial_suggestions(self) -> list[Suggestion]:
        design = maximin_latin_hypercube(
            self.n_init, self.problem.dim, self._rng_streams["init"]
        )
        return [Suggestion(u, self._fidelity) for u in design]

    def _refill(self, k: int) -> None:
        remaining = self.budget - self.history.n_evaluations(self._fidelity)
        m = min(k, remaining)
        if m <= 0:
            return
        self._iteration += 1
        population = self._population()
        candidates = self._generate_candidates(population)
        ranking = self._prescreen(candidates)
        order = np.argsort(ranking, kind="stable")
        picked: list[np.ndarray] = []
        for idx in order:
            candidate = candidates[int(idx)]
            if picked and float(
                np.min(
                    np.linalg.norm(
                        np.vstack(picked) - candidate[None, :], axis=1
                    )
                )
            ) <= 1e-12:
                continue  # surrogate ties can duplicate trial vectors
            picked.append(candidate)
            self._queue.append(Suggestion(candidate, self._fidelity))
            if len(picked) >= m:
                break

    def _done(self) -> bool:
        return self.history.n_evaluations(self._fidelity) >= self.budget

    # ------------------------------------------------------------------
    def config_dict(self) -> dict:
        return {
            "budget": self.budget,
            "n_init": self.n_init,
            "pop_size": self.pop_size,
            "n_candidates_per_parent": self.n_candidates_per_parent,
            "beta": self.beta,
            "n_restarts": self.n_restarts,
            "gp_max_opt_iter": self.gp_max_opt_iter,
        }
