"""GASPAD — surrogate-assisted evolutionary optimization baseline.

Re-implementation of the structure of Liu et al., TCAD 2014 (paper
ref. [16]): differential-evolution variation operators generate candidate
designs, a GP surrogate *prescreens* them with a lower-confidence-bound
criterion, and only the most promising candidate per generation receives
a true (expensive) simulation.

Constraint handling follows the feasibility-rule style the original uses:
candidates are ranked by Deb's tournament on the LCB of the objective and
the predicted total constraint violation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..acquisition.functions import lower_confidence_bound
from ..core.history import History
from ..core.result import BOResult
from ..design.sampling import maximin_latin_hypercube
from ..gp.gpr import GPR
from ..optim.de import DifferentialEvolution, deb_fitness
from ..problems.base import Problem

__all__ = ["GASPAD"]


class GASPAD:
    """GP + DE surrogate-assisted evolutionary algorithm.

    Parameters
    ----------
    problem:
        Problem to optimize (highest fidelity only).
    budget:
        Number of true simulations, including the initial design.
    n_init:
        Initial Latin-hypercube design size (paper: 120 for the charge
        pump, also used to seed the evolutionary population).
    pop_size:
        Evolutionary population size (the ``pop_size`` best simulated
        points so far).
    n_candidates_per_parent:
        DE trial vectors generated per population member and prescreened
        by the surrogate each generation.
    beta:
        LCB exploration weight.
    """

    algorithm_name = "GASPAD"

    def __init__(
        self,
        problem: Problem,
        budget: int = 300,
        n_init: int = 40,
        pop_size: int = 20,
        n_candidates_per_parent: int = 3,
        beta: float = 2.0,
        n_restarts: int = 1,
        gp_max_opt_iter: int = 100,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ):
        if budget < n_init:
            raise ValueError("budget must cover the initial design")
        if pop_size < 4:
            raise ValueError("pop_size must be >= 4 for DE operators")
        if n_candidates_per_parent < 1:
            raise ValueError("n_candidates_per_parent must be >= 1")
        self.problem = problem
        self.budget = int(budget)
        self.n_init = int(n_init)
        self.pop_size = int(pop_size)
        self.n_candidates_per_parent = int(n_candidates_per_parent)
        self.beta = float(beta)
        self.n_restarts = int(n_restarts)
        self.gp_max_opt_iter = int(gp_max_opt_iter)
        self.callback = callback
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.history = History()
        self._fidelity = problem.highest_fidelity

    # ------------------------------------------------------------------
    def _population(self) -> np.ndarray:
        """The ``pop_size`` best simulated points under Deb's rules."""
        x, y, constraints = self.history.data(self._fidelity)
        violation = (
            np.sum(np.maximum(constraints, 0.0), axis=1)
            if constraints.size
            else np.zeros(y.shape)
        )
        fitness = deb_fitness(y, violation)
        order = np.argsort(fitness)
        return x[order[: self.pop_size]]

    def _generate_candidates(self, population: np.ndarray) -> np.ndarray:
        """DE rand/1/bin trials from the elite population."""
        engine = DifferentialEvolution(
            dim=self.problem.dim,
            pop_size=max(4, population.shape[0]),
            rng=self.rng,
        )
        pop = population
        if pop.shape[0] < 4:  # pad tiny populations by resampling
            extra = pop[self.rng.integers(pop.shape[0], size=4 - pop.shape[0])]
            pop = np.vstack([pop, extra])
        engine.initialize(pop)
        engine.tell(np.zeros(pop.shape[0]), initial=True)
        trials = [engine.ask() for _ in range(self.n_candidates_per_parent)]
        return np.vstack(trials)

    def _prescreen(self, candidates: np.ndarray) -> np.ndarray:
        """Rank candidates by surrogate LCB + predicted violation."""
        x, y, constraints = self.history.data(self._fidelity)
        objective_gp = GPR(max_opt_iter=self.gp_max_opt_iter).fit(
            x, y, n_restarts=self.n_restarts, rng=self.rng
        )
        mu, var = objective_gp.predict(candidates)
        lcb = lower_confidence_bound(mu, var, self.beta)
        violation = np.zeros(candidates.shape[0])
        for i in range(constraints.shape[1]):
            constraint_gp = GPR(max_opt_iter=self.gp_max_opt_iter).fit(
                x, constraints[:, i], n_restarts=self.n_restarts, rng=self.rng
            )
            mu_c, var_c = constraint_gp.predict(candidates)
            violation += np.maximum(
                0.0, lower_confidence_bound(mu_c, var_c, self.beta)
            )
        return deb_fitness(lcb, violation)

    # ------------------------------------------------------------------
    def run(self) -> BOResult:
        """Run the surrogate-assisted EA until the budget is exhausted."""
        for u in maximin_latin_hypercube(self.n_init, self.problem.dim, self.rng):
            self.history.add(
                u, self.problem.evaluate_unit(u, self._fidelity), iteration=0
            )
        iteration = 0
        while self.history.n_evaluations(self._fidelity) < self.budget:
            iteration += 1
            population = self._population()
            candidates = self._generate_candidates(population)
            ranking = self._prescreen(candidates)
            best = candidates[int(np.argmin(ranking))]
            evaluation = self.problem.evaluate_unit(best, self._fidelity)
            self.history.add(best, evaluation, iteration=iteration)
            if self.callback is not None:
                self.callback(iteration, self.history)
        return BOResult.from_history(
            self.problem, self.history, self.algorithm_name
        )
