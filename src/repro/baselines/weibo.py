"""WEIBO — single-fidelity GP Bayesian optimization with weighted EI.

The state-of-the-art baseline the paper compares against (Lyu et al.,
TCAS-I 2018, ref. [17]): a plain GP surrogate per output, the weighted
Expected Improvement acquisition (eq. 6), and a multiple-starting-point
acquisition search. All simulations run at the highest fidelity.

Implements the ask/tell :class:`repro.session.Strategy` protocol:
``suggest``/``observe`` drive the loop, ``run()`` is the legacy blocking
wrapper. ``suggest(k > 1)`` produces distinct batch candidates via
kriging-believer fantasization (each picked point is added to the
surrogates with its posterior-mean outcome before the next search).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..deprecation import keyword_only_config
from ..acquisition.functions import ViolationAcquisition, WeightedEI
from ..core.history import History
from ..core.strategy import StrategyBase
from ..design.sampling import maximin_latin_hypercube
from ..gp.gpr import GPR
from ..optim.msp import MSPOptimizer
from ..problems.base import Problem
from ..session.protocol import Suggestion

__all__ = ["WEIBO"]


class WEIBO(StrategyBase):
    """Single-fidelity constrained BO baseline.

    Parameters
    ----------
    problem:
        Any :class:`repro.problems.Problem`; only its highest fidelity is
        used.
    budget:
        Number of (high-fidelity) simulations, including the initial
        design — matching the paper's protocol ("WEIBO is initialized
        with 40 high-fidelity data points and limited with 150
        simulations").
    n_init:
        Initial Latin-hypercube design size.
    """

    algorithm_name = "WEIBO"
    strategy_id = "weibo"
    rng_stream_names = ("init", "gp", "acq", "dedup")

    @keyword_only_config
    def __init__(
        self,
        problem: Problem,
        budget: int = 150,
        n_init: int = 40,
        n_restarts: int = 2,
        gp_max_opt_iter: int = 100,
        msp_starts: int = 100,
        msp_polish: int = 3,
        ball_stddev: float = 0.03,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ):
        if budget < n_init:
            raise ValueError("budget must cover the initial design")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.budget = int(budget)
        self.n_init = int(n_init)
        self.n_restarts = int(n_restarts)
        self.gp_max_opt_iter = int(gp_max_opt_iter)
        self.msp_starts = int(msp_starts)
        self.msp_polish = int(msp_polish)
        self.ball_stddev = float(ball_stddev)
        self._setup_base(problem, seed, rng, callback)
        self.acq_optimizer = MSPOptimizer(
            dim=problem.dim,
            n_starts=msp_starts,
            n_polish=msp_polish,
            frac_around_low=0.0,
            frac_around_high=0.40,
            ball_stddev=ball_stddev,
            rng=self._rng_streams["acq"],
        )
        self._fidelity = problem.highest_fidelity

    # ------------------------------------------------------------------
    def _fit_models(self) -> list[GPR]:
        x, y, constraints = self.history.data(self._fidelity)
        targets = [y] + [constraints[:, i] for i in range(constraints.shape[1])]
        return [
            GPR(max_opt_iter=self.gp_max_opt_iter).fit(
                x, t, n_restarts=self.n_restarts, rng=self._rng_streams["gp"]
            )
            for t in targets
        ]

    def _build_acquisition(self, models: list[GPR]):
        predictors = [(lambda m: (lambda x: m.predict(x)))(m) for m in models]
        feasible = self.history.best_feasible(self._fidelity)
        if feasible is not None or len(predictors) == 1:
            tau = feasible.objective if feasible is not None else None
            return WeightedEI(predictors[0], predictors[1:], tau)
        return ViolationAcquisition(predictors[1:])

    # ------------------------------------------------------------------
    # ask/tell hooks
    # ------------------------------------------------------------------
    def _initial_suggestions(self) -> list[Suggestion]:
        design = maximin_latin_hypercube(
            self.n_init, self.problem.dim, self._rng_streams["init"]
        )
        return [Suggestion(u, self._fidelity) for u in design]

    def _refill(self, k: int) -> None:
        remaining = self.budget - self.history.n_evaluations(self._fidelity)
        m = min(k, remaining)
        if m <= 0:
            return
        self._iteration += 1
        models = self._fit_models()
        avoid: list[np.ndarray] = []
        for j in range(m):
            acquisition = self._build_acquisition(models)
            incumbent = self.history.incumbent(self._fidelity)
            result = self.acq_optimizer.maximize(
                acquisition,
                incumbent_high=None if incumbent is None else incumbent.x_unit,
            )
            x_next = self._dedup(result.x, avoid=avoid)
            self._queue.append(Suggestion(x_next, self._fidelity))
            avoid.append(x_next)
            if j < m - 1:
                # Kriging believer: pretend the posterior mean was
                # observed so the next batch member explores elsewhere.
                # The polluted surrogates are local to this refill; the
                # next one refits from real data.
                x2 = x_next[None, :]
                for gp in models:
                    gp.add_points(x2, gp.predict_mean(x2))

    def _done(self) -> bool:
        return self.history.n_evaluations(self._fidelity) >= self.budget

    # ------------------------------------------------------------------
    def config_dict(self) -> dict:
        return {
            "budget": self.budget,
            "n_init": self.n_init,
            "n_restarts": self.n_restarts,
            "gp_max_opt_iter": self.gp_max_opt_iter,
            "msp_starts": self.msp_starts,
            "msp_polish": self.msp_polish,
            "ball_stddev": self.ball_stddev,
        }
