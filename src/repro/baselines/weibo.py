"""WEIBO — single-fidelity GP Bayesian optimization with weighted EI.

The state-of-the-art baseline the paper compares against (Lyu et al.,
TCAS-I 2018, ref. [17]): a plain GP surrogate per output, the weighted
Expected Improvement acquisition (eq. 6), and a multiple-starting-point
acquisition search. All simulations run at the highest fidelity.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..acquisition.functions import ViolationAcquisition, WeightedEI
from ..core.history import History
from ..core.result import BOResult
from ..design.sampling import maximin_latin_hypercube
from ..gp.gpr import GPR
from ..optim.msp import MSPOptimizer
from ..problems.base import Problem

__all__ = ["WEIBO"]


class WEIBO:
    """Single-fidelity constrained BO baseline.

    Parameters
    ----------
    problem:
        Any :class:`repro.problems.Problem`; only its highest fidelity is
        used.
    budget:
        Number of (high-fidelity) simulations, including the initial
        design — matching the paper's protocol ("WEIBO is initialized
        with 40 high-fidelity data points and limited with 150
        simulations").
    n_init:
        Initial Latin-hypercube design size.
    """

    algorithm_name = "WEIBO"

    def __init__(
        self,
        problem: Problem,
        budget: int = 150,
        n_init: int = 40,
        n_restarts: int = 2,
        gp_max_opt_iter: int = 100,
        msp_starts: int = 100,
        msp_polish: int = 3,
        ball_stddev: float = 0.03,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        callback: Callable[[int, History], None] | None = None,
    ):
        if budget < n_init:
            raise ValueError("budget must cover the initial design")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.problem = problem
        self.budget = int(budget)
        self.n_init = int(n_init)
        self.n_restarts = int(n_restarts)
        self.gp_max_opt_iter = int(gp_max_opt_iter)
        self.callback = callback
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.acq_optimizer = MSPOptimizer(
            dim=problem.dim,
            n_starts=msp_starts,
            n_polish=msp_polish,
            frac_around_low=0.0,
            frac_around_high=0.40,
            ball_stddev=ball_stddev,
            rng=self.rng,
        )
        self.history = History()
        self._fidelity = problem.highest_fidelity

    # ------------------------------------------------------------------
    def _fit_models(self) -> list[GPR]:
        x, y, constraints = self.history.data(self._fidelity)
        targets = [y] + [constraints[:, i] for i in range(constraints.shape[1])]
        return [
            GPR(max_opt_iter=self.gp_max_opt_iter).fit(
                x, t, n_restarts=self.n_restarts, rng=self.rng
            )
            for t in targets
        ]

    def _build_acquisition(self, models: list[GPR]):
        predictors = [(lambda m: (lambda x: m.predict(x)))(m) for m in models]
        feasible = self.history.best_feasible(self._fidelity)
        if feasible is not None or len(predictors) == 1:
            tau = feasible.objective if feasible is not None else None
            return WeightedEI(predictors[0], predictors[1:], tau)
        return ViolationAcquisition(predictors[1:])

    # ------------------------------------------------------------------
    def run(self) -> BOResult:
        """Run the BO loop until the simulation budget is exhausted."""
        for u in maximin_latin_hypercube(self.n_init, self.problem.dim, self.rng):
            self.history.add(
                u, self.problem.evaluate_unit(u, self._fidelity), iteration=0
            )
        iteration = 0
        while self.history.n_evaluations(self._fidelity) < self.budget:
            iteration += 1
            models = self._fit_models()
            acquisition = self._build_acquisition(models)
            incumbent = self.history.incumbent(self._fidelity)
            result = self.acq_optimizer.maximize(
                acquisition,
                incumbent_high=None if incumbent is None else incumbent.x_unit,
            )
            x_next = self._dedup(result.x)
            evaluation = self.problem.evaluate_unit(x_next, self._fidelity)
            self.history.add(x_next, evaluation, iteration=iteration)
            if self.callback is not None:
                self.callback(iteration, self.history)
        return BOResult.from_history(
            self.problem, self.history, self.algorithm_name
        )

    def _dedup(self, x: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
        existing = np.vstack([r.x_unit for r in self.history.records])
        if float(np.min(np.linalg.norm(existing - x[None, :], axis=1))) > tolerance:
            return x
        return np.clip(
            x + 1e-6 * self.rng.standard_normal(x.size), 0.0, 1.0
        )
