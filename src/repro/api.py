"""Front-door helpers: ``repro.open_session`` and ``repro.connect``.

These are the two documented entry points for *running* optimizations —
everything else in the package is substrate. ``open_session`` builds an
in-process (optionally vault-persisted) ask/tell session from registry
names; ``connect`` reaches a session server over TCP.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from .registry import get_problem, get_strategy
from .service.client import connect
from .session.session import OptimizationSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .problems.base import Problem
    from .service.vault import RunVault, VaultSession
    from .session.evaluators import Evaluator
    from .session.protocol import Strategy

__all__ = ["open_session", "connect"]


def open_session(
    problem: "Problem | str",
    strategy: "Strategy | str" = "mfbo",
    *,
    vault: "RunVault | str | Path | None" = None,
    evaluator: "Evaluator | None" = None,
    checkpoint_path: "str | Path | None" = None,
    checkpoint_every: "int | None" = None,
    **config,
) -> "OptimizationSession | VaultSession":
    """Build an ask/tell optimization session from names or instances.

    Parameters
    ----------
    problem:
        A registry name (``repro.list_problems()``) or a ready
        :class:`repro.Problem` instance.
    strategy:
        A registry name (``repro.list_strategies()``) or a ready
        strategy instance; ``**config`` is forwarded to the strategy
        constructor when a name is given.
    vault:
        When set (path or :class:`repro.service.RunVault`), the run is
        persisted in the vault — crash-safe, queryable, resumable via
        :meth:`RunVault.resume` — and a
        :class:`repro.service.VaultSession` is returned. Without it a
        plain in-process :class:`repro.session.OptimizationSession` is
        returned, optionally checkpointing to ``checkpoint_path``.

    >>> with repro.open_session("forrester", "mfbo", budget=20.0) as s:
    ...     result = s.run()                            # doctest: +SKIP
    """
    if vault is not None:
        from .service.vault import RunVault

        if not isinstance(vault, RunVault):
            vault = RunVault(vault)
        return vault.open_session(
            problem,
            strategy,
            evaluator=evaluator,
            checkpoint_every=checkpoint_every or 1,
            **config,
        )
    if isinstance(problem, str):
        problem = get_problem(problem)
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)(problem, **config)
    elif config:
        raise TypeError(
            "strategy configuration kwargs require a strategy *name*; got "
            f"a ready instance plus {sorted(config)}"
        )
    return OptimizationSession(
        strategy,
        evaluator=evaluator,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
