"""Design space: named continuous variables with box bounds.

All optimizers and models in this repository work on the **unit cube**
``[0, 1]^d`` internally; :class:`DesignSpace` owns the affine transform to
and from physical units (e.g. transistor widths in micrometres, bias
voltages in volts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Variable", "DesignSpace"]


@dataclass(frozen=True)
class Variable:
    """One continuous design variable.

    Parameters
    ----------
    name:
        Human readable identifier (e.g. ``"W1"``, ``"Vb"``).
    lower, upper:
        Physical bounds; must satisfy ``lower < upper``.
    unit:
        Optional unit string for reports (e.g. ``"um"``, ``"V"``).
    log_scale:
        If ``True``, the unit-cube transform is affine in ``log10`` of the
        value — appropriate for variables spanning decades (bias currents,
        capacitances).
    """

    name: str
    lower: float
    upper: float
    unit: str = ""
    log_scale: bool = False

    def __post_init__(self):
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise ValueError(f"variable {self.name!r} has non-finite bounds")
        if self.lower >= self.upper:
            raise ValueError(
                f"variable {self.name!r} needs lower < upper, got "
                f"[{self.lower}, {self.upper}]"
            )
        if self.log_scale and self.lower <= 0:
            raise ValueError(
                f"log-scale variable {self.name!r} needs positive bounds"
            )

    def to_unit(self, value: np.ndarray) -> np.ndarray:
        """Map physical values into ``[0, 1]``.

        Raises
        ------
        ValueError
            For non-positive values on a log-scale variable (instead of
            silently propagating NaN into the optimizer).
        """
        value = np.asarray(value, dtype=float)
        if self.log_scale:
            if np.any(value <= 0.0):
                raise ValueError(
                    f"log-scale variable {self.name!r} cannot map "
                    "non-positive values into the unit cube: got "
                    f"min {np.min(value):g}"
                )
            lo, hi = np.log10(self.lower), np.log10(self.upper)
            return (np.log10(value) - lo) / (hi - lo)
        return (value - self.lower) / (self.upper - self.lower)

    def from_unit(self, unit_value: np.ndarray) -> np.ndarray:
        """Map unit-cube values back to physical units."""
        unit_value = np.asarray(unit_value, dtype=float)
        if self.log_scale:
            lo, hi = np.log10(self.lower), np.log10(self.upper)
            return 10.0 ** (lo + unit_value * (hi - lo))
        return self.lower + unit_value * (self.upper - self.lower)


@dataclass
class DesignSpace:
    """An ordered collection of :class:`Variable`.

    Examples
    --------
    >>> space = DesignSpace([
    ...     Variable("Vb", 1.0, 2.0, unit="V"),
    ...     Variable("W", 1e-6, 1e-4, unit="m", log_scale=True),
    ... ])
    >>> space.dim
    2
    >>> x = space.from_unit([0.5, 0.5])
    >>> bool(abs(x[0] - 1.5) < 1e-12)
    True
    """

    variables: list[Variable] = field(default_factory=list)

    def __post_init__(self):
        names = [v.name for v in self.variables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable names in {names}")

    @classmethod
    def from_bounds(
        cls, lower, upper, names: list[str] | None = None
    ) -> "DesignSpace":
        """Build a space from parallel bound arrays."""
        lower = np.asarray(lower, dtype=float).ravel()
        upper = np.asarray(upper, dtype=float).ravel()
        if lower.shape != upper.shape:
            raise ValueError("lower and upper bounds must have the same length")
        if names is None:
            names = [f"x{i}" for i in range(lower.size)]
        if len(names) != lower.size:
            raise ValueError("names length must match bounds length")
        return cls([Variable(n, lo, hi) for n, lo, hi in zip(names, lower, upper)])

    @property
    def dim(self) -> int:
        return len(self.variables)

    @property
    def names(self) -> list[str]:
        return [v.name for v in self.variables]

    @property
    def lower(self) -> np.ndarray:
        return np.array([v.lower for v in self.variables])

    @property
    def upper(self) -> np.ndarray:
        return np.array([v.upper for v in self.variables])

    def __len__(self) -> int:
        return self.dim

    def __getitem__(self, name: str) -> Variable:
        for variable in self.variables:
            if variable.name == name:
                return variable
        raise KeyError(name)

    def to_unit(self, x: np.ndarray) -> np.ndarray:
        """Map physical design points ``(n, d)`` or ``(d,)`` to the unit cube."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        self._check_dim(x)
        unit = np.column_stack(
            [v.to_unit(x[:, i]) for i, v in enumerate(self.variables)]
        )
        return unit[0] if single else unit

    def from_unit(self, u: np.ndarray) -> np.ndarray:
        """Map unit-cube points back to physical units."""
        u = np.asarray(u, dtype=float)
        single = u.ndim == 1
        u = np.atleast_2d(u)
        self._check_dim(u)
        phys = np.column_stack(
            [v.from_unit(u[:, i]) for i, v in enumerate(self.variables)]
        )
        return phys[0] if single else phys

    def clip_unit(self, u: np.ndarray) -> np.ndarray:
        """Clip unit-cube points into ``[0, 1]^d``."""
        return np.clip(np.asarray(u, dtype=float), 0.0, 1.0)

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask: which physical points lie inside the box bounds."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_dim(x)
        return np.all((x >= self.lower) & (x <= self.upper), axis=1)

    def as_dict(self, x: np.ndarray) -> dict[str, float]:
        """Render one physical point as a ``{name: value}`` mapping."""
        x = np.asarray(x, dtype=float).ravel()
        self._check_dim(x.reshape(1, -1))
        return {v.name: float(xi) for v, xi in zip(self.variables, x)}

    def _check_dim(self, x: np.ndarray) -> None:
        if x.shape[1] != self.dim:
            raise ValueError(
                f"expected {self.dim}-dimensional points, got {x.shape[1]}"
            )
