"""Space-filling sampling on the unit cube.

Bayesian optimization initial designs (paper §5: "randomly initialize the
training set") and the multiple-starting-point scatter (§4.1) both draw
from these helpers.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng

__all__ = [
    "uniform",
    "latin_hypercube",
    "maximin_latin_hypercube",
    "gaussian_ball",
]


def _require_rng(rng: np.random.Generator | None) -> np.random.Generator:
    return ensure_rng(rng)


def uniform(
    n: int, dim: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """``n`` i.i.d. uniform points on ``[0, 1]^dim``."""
    if n < 0 or dim < 1:
        raise ValueError("need n >= 0 and dim >= 1")
    rng = _require_rng(rng)
    return rng.random((n, dim))


def latin_hypercube(
    n: int, dim: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Latin hypercube sample: one point per axis-aligned stratum.

    Each of the ``dim`` axes is cut into ``n`` equal strata and every
    stratum receives exactly one coordinate, with independent random
    permutations per axis.
    """
    if n < 0 or dim < 1:
        raise ValueError("need n >= 0 and dim >= 1")
    if n == 0:
        return np.empty((0, dim))
    rng = _require_rng(rng)
    samples = np.empty((n, dim))
    for j in range(dim):
        perm = rng.permutation(n)
        samples[:, j] = (perm + rng.random(n)) / n
    return samples


def maximin_latin_hypercube(
    n: int,
    dim: int,
    rng: np.random.Generator | None = None,
    n_candidates: int = 10,
) -> np.ndarray:
    """Best-of-``n_candidates`` LHS under the maximin pairwise distance.

    A cheap approximation of optimal LHS that noticeably improves initial
    GP designs for the circuit problems.
    """
    if n_candidates < 1:
        raise ValueError("n_candidates must be >= 1")
    rng = _require_rng(rng)
    if n < 2:
        return latin_hypercube(n, dim, rng)
    best, best_score = None, -np.inf
    for _ in range(n_candidates):
        candidate = latin_hypercube(n, dim, rng)
        diffs = candidate[:, None, :] - candidate[None, :, :]
        dist2 = np.sum(diffs * diffs, axis=2)
        np.fill_diagonal(dist2, np.inf)
        score = float(np.min(dist2))
        if score > best_score:
            best, best_score = candidate, score
    return best


def gaussian_ball(
    center: np.ndarray,
    n: int,
    stddev: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """``n`` Gaussian perturbations of ``center``, clipped to the unit cube.

    Used by the MSP strategy (§4.1) to scatter a fraction of acquisition
    starting points around the incumbents ``tau_l`` and ``tau_h``.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if stddev <= 0:
        raise ValueError("stddev must be positive")
    rng = _require_rng(rng)
    center = np.asarray(center, dtype=float).ravel()
    points = center[None, :] + stddev * rng.standard_normal((n, center.size))
    return np.clip(points, 0.0, 1.0)
