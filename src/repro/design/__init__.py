"""Design space definitions and space-filling sampling."""

from .sampling import (
    gaussian_ball,
    latin_hypercube,
    maximin_latin_hypercube,
    uniform,
)
from .space import DesignSpace, Variable

__all__ = [
    "DesignSpace",
    "Variable",
    "uniform",
    "latin_hypercube",
    "maximin_latin_hypercube",
    "gaussian_ball",
]
