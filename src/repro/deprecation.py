"""Deprecation shims for the keyword-only constructor migration.

Every optimizer constructor takes ``problem`` followed by a long block
of configuration arguments (``budget=``, ``n_init*=``, ``seed=``,
``rng=``, ...). Positional configuration was always fragile — inserting
one parameter silently reinterprets every call site after it — so the
public signatures are now keyword-only after ``problem``.

:func:`keyword_only_config` performs the migration without breaking a
single existing call: legacy positional arguments are mapped onto the
declared parameter order and accepted with **exactly one**
:class:`DeprecationWarning` per offending construction. The wrapper also
rewrites ``__signature__`` so ``inspect``/help render the new
keyword-only form.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Callable

__all__ = ["keyword_only_config"]


def keyword_only_config(init: Callable) -> Callable:
    """Make an ``__init__``'s config parameters keyword-only, with a shim.

    The decorated ``__init__`` must take ``(self, problem, *config)``.
    ``problem`` stays positional; any further positional argument is
    matched to the declared parameter order, forwarded as a keyword and
    reported once per call via ``DeprecationWarning``.
    """
    signature = inspect.signature(init)
    parameters = list(signature.parameters.values())
    # parameters[0] is self, parameters[1] the problem; the rest is the
    # configuration block being migrated to keyword-only.
    config_names = [p.name for p in parameters[2:]]

    @functools.wraps(init)
    def wrapper(self, problem, *args, **kwargs):
        if args:
            if len(args) > len(config_names):
                raise TypeError(
                    f"{type(self).__name__}() takes at most "
                    f"{len(config_names)} configuration arguments "
                    f"({len(args)} given)"
                )
            positional = dict(zip(config_names, args))
            duplicates = sorted(set(positional) & set(kwargs))
            if duplicates:
                raise TypeError(
                    f"{type(self).__name__}() got multiple values for "
                    f"{', '.join(duplicates)}"
                )
            warnings.warn(
                f"passing configuration arguments to "
                f"{type(self).__name__} positionally is deprecated and "
                f"will become an error; use keyword arguments "
                f"({', '.join(sorted(positional))})",
                DeprecationWarning,
                stacklevel=2,
            )
            kwargs.update(positional)
        return init(self, problem, **kwargs)

    wrapper.__signature__ = signature.replace(
        parameters=parameters[:2]
        + [p.replace(kind=inspect.Parameter.KEYWORD_ONLY) for p in parameters[2:]]
    )
    return wrapper
