"""Ask/tell sessions: external evaluation, parallel batches, resume.

Three ways to drive the paper's optimizer through the session API:

1. **Manual ask/tell** — you own the evaluation loop (e.g. submit each
   suggestion to a simulator farm and feed the results back).
2. **Parallel batch evaluation** — ``suggest(k)`` produces ``k``
   distinct candidates via constant-liar fantasization, and a
   ``ProcessPoolEvaluator`` simulates them concurrently.
3. **Checkpoint and resume** — save a session mid-run, rebuild it from
   the JSON checkpoint, and get the exact trajectory the uninterrupted
   run would have produced.
4. **Asynchronous fault-tolerant farm** — an ``AsyncEvaluator`` streams
   results back out of completion order, retries transient worker
   failures and converts hard failures into ``FailedEvaluation`` records
   the optimizer treats as infeasible.

Run:  python examples/ask_tell.py
"""

import tempfile
from pathlib import Path

from repro import (
    AsyncEvaluator,
    FaultInjectingEvaluator,
    MFBOptimizer,
    OptimizationSession,
    ProcessPoolEvaluator,
)
from repro.problems import ForresterProblem

SETTINGS = dict(
    budget=10.0,
    n_init_low=8,
    n_init_high=3,
    msp_starts=40,
    msp_polish=1,
    n_restarts=1,
    n_mc_samples=8,
)


def manual_ask_tell(seed: int = 0) -> None:
    optimizer = MFBOptimizer(ForresterProblem(), seed=seed, **SETTINGS)
    problem = optimizer.problem
    while not optimizer.is_done:
        batch = optimizer.suggest()          # ask
        if not batch:
            break
        for x_unit, fidelity in batch:       # evaluate however you like
            evaluation = problem.evaluate_unit(x_unit, fidelity)
            optimizer.observe(x_unit, fidelity, evaluation)  # tell
    result = optimizer.result()
    print(
        f"  manual ask/tell   : f = {result.best_objective:+.4f} "
        f"({result.n_low} coarse + {result.n_high} fine sims)"
    )


def parallel_batches(seed: int = 0) -> None:
    # own_evaluator=True hands the pool's lifetime to the session, so
    # leaving the with-block shuts the workers down.
    with OptimizationSession(
        MFBOptimizer(ForresterProblem(), seed=seed, **SETTINGS),
        evaluator=ProcessPoolEvaluator(max_workers=3),
        own_evaluator=True,
    ) as session:
        result = session.run(batch_size=3)   # 3 suggestions per iteration
    print(
        f"  parallel batches  : f = {result.best_objective:+.4f} "
        f"({result.n_low} coarse + {result.n_high} fine sims)"
    )


def checkpoint_resume(seed: int = 0) -> None:
    path = Path(tempfile.mkdtemp()) / "session.json"
    session = OptimizationSession(
        MFBOptimizer(ForresterProblem(), seed=seed, **SETTINGS)
    )
    for _ in range(6):                       # ... the process dies here
        session.step()
    session.save(path)
    del session

    resumed = OptimizationSession.resume(path, ForresterProblem())
    result = resumed.run()
    reference = MFBOptimizer(ForresterProblem(), seed=seed, **SETTINGS).run()
    print(
        f"  checkpoint/resume : f = {result.best_objective:+.4f} "
        f"(identical to uninterrupted run: {result == reference})"
    )


def fault_tolerant_farm(seed: int = 0) -> None:
    # A farm of 2 workers with per-evaluation timeout and retry; the
    # fault injector kills/hangs/poisons a deterministic 20% of the
    # evaluations — every casualty lands in the history as an
    # infeasible FailedEvaluation and the run still exhausts its budget.
    farm = FaultInjectingEvaluator(
        AsyncEvaluator(
            max_workers=2, timeout_s=5.0, max_attempts=3,
            retry_backoff_s=0.1,
        ),
        rate=0.2, hang_s=30.0, seed=7,
    )
    with OptimizationSession(
        MFBOptimizer(ForresterProblem(), seed=seed, **SETTINGS),
        evaluator=farm,
        own_evaluator=True,
    ) as session:
        result = session.run_async(batch_size=2, over_suggest=1)
    n_failed = sum(r.evaluation.failed for r in session.history.records)
    print(
        f"  fault-tolerant farm: f = {result.best_objective:+.4f} "
        f"({n_failed} injected failures survived)"
    )


def main() -> None:
    print("Forrester function, true minimum f(x*) = -6.0207")
    manual_ask_tell()
    parallel_batches()
    checkpoint_resume()
    fault_tolerant_farm()


if __name__ == "__main__":
    main()
