"""Tracing an instrumented optimization run, end to end.

A small slice of the paper's Table 1 setup — the class-F power
amplifier optimized by the multi-fidelity strategy over an async
two-worker evaluator farm — with span tracing enabled. Every layer
contributes spans to one trace file:

* ``experiment.tab1-slice`` — the root span opened here;
* ``strategy.suggest`` / ``strategy.observe`` — the ask/tell halves,
  with ``gp.fit`` / ``nargp.fit`` nested under the suggest path;
* ``farm.dispatch`` (client side) and ``farm.evaluate`` (inside the
  worker *processes* — note the differing ``pid`` fields), linked into
  the same trace through the submit payload.

Afterwards the script renders the per-span latency table in-process —
the same table ``python -m repro.obs summarize trace.jsonl`` prints.

Run:  python examples/tracing.py [trace.jsonl]
"""

import sys
import tempfile
from pathlib import Path

from repro import AsyncEvaluator, MFBOptimizer, OptimizationSession
from repro.circuits.power_amplifier import PowerAmplifierProblem
from repro.obs import span, tracing
from repro.obs.cli import load_spans, render_table, summarize_rows


def main() -> None:
    if len(sys.argv) > 1:
        trace_path = Path(sys.argv[1])
    else:
        trace_path = (
            Path(tempfile.mkdtemp(prefix="repro-trace-")) / "trace.jsonl"
        )

    problem = PowerAmplifierProblem()
    strategy = MFBOptimizer(
        problem,
        budget=9.0,
        n_init_low=6,
        n_init_high=3,
        n_mc_samples=6,
        n_restarts=1,
        msp_starts=20,
        msp_polish=1,
        gp_max_opt_iter=25,
        seed=2019,
    )

    with tracing(str(trace_path)):
        with span("experiment.tab1-slice", seed=2019):
            with AsyncEvaluator(max_workers=2) as evaluator:
                session = OptimizationSession(strategy, evaluator)
                result = session.run_async(batch_size=2)

    print(f"best objective : {result.best_objective:.4f}")
    print(f"trace file     : {trace_path}")
    print()
    rows = summarize_rows(load_spans(str(trace_path)))
    print(render_table(rows))
    print()
    print(f"(same table: python -m repro.obs summarize {trace_path})")


if __name__ == "__main__":
    main()
