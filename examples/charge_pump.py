"""Charge-pump sizing — the paper's §5.2 experiment, pocket edition.

Sizes 18 transistors (36 W/L variables) of a behavioral charge pump so
that the UP/DOWN currents stay in a tight window around 40 uA across 27
PVT corners. Low fidelity simulates the typical corner only (1/27 of the
cost); the fidelity-selection criterion (paper eq. 12) decides when a
candidate deserves the full corner sweep.

Run:  python examples/charge_pump.py        (~2-4 minutes)
"""

from repro import MFBOptimizer
from repro.circuits import ChargePumpProblem
from repro.circuits.charge_pump import DEVICE_NAMES


def main(seed: int = 3) -> None:
    problem = ChargePumpProblem()
    result = MFBOptimizer(
        problem,
        budget=12.5,          # equivalent full-corner simulations
        n_init_low=30,
        n_init_high=10,
        msp_starts=60,
        msp_polish=0,         # 36-dim: scatter-only acquisition search
        n_restarts=1,
        gp_max_opt_iter=40,
        n_mc_samples=10,
        seed=seed,
    ).run()

    print("best sizing (W/L in um):")
    for i, name in enumerate(DEVICE_NAMES):
        w, l = result.best_x[2 * i], result.best_x[2 * i + 1]
        print(f"  {name:6s} W = {w:6.2f}  L = {l:5.3f}")
    print("\nworst-case metrics over 27 PVT corners (uA):")
    for key in ("max_diff1", "max_diff2", "max_diff3", "max_diff4",
                "deviation", "FOM"):
        print(f"  {key:10s} = {result.metrics[key]:.3f}")
    print(
        f"\n  feasible: {result.feasible}"
        f"\n  cost: {result.n_low} single-corner + {result.n_high} "
        f"full-corner = {result.equivalent_cost:.1f} equivalent simulations"
    )


if __name__ == "__main__":
    main()
