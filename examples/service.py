"""Optimization as a service: vault, server, concurrent clients, resume.

Four acts, all against one run vault:

1. **Serve** — boot a :class:`repro.SessionServer` on an ephemeral port
   (in-process here; production would run ``python -m repro.service
   serve --root runs/``).
2. **Two concurrent clients** — each connects with :func:`repro.connect`
   and drives its own run through the ask/tell wire protocol; the
   simulator executes client-side, the strategy state lives server-side.
3. **Kill and resume** — a client abandons a run mid-flight (as if the
   machine died); a second client re-attaches and the vault replays
   every acknowledged evaluation before continuing, point-for-point.
4. **Query** — list runs, pull posterior predictions (served from the
   LRU posterior cache; the second call is a hit), inspect cache stats.

Run:  python examples/service.py
"""

import tempfile
import threading

from repro import connect
from repro.service import serve

SETTINGS = dict(budget=8, n_init=3)


def main() -> None:
    vault_root = tempfile.mkdtemp(prefix="repro-vault-")

    # -- act 1: boot the server ----------------------------------------
    server = serve(vault_root)
    server.start_background()
    address = server.address
    print(f"[server] listening on {address[0]}:{address[1]}")
    print(f"[server] vault root: {vault_root}")

    # -- act 2: two clients, concurrently ------------------------------
    def drive(tag: str, seed: int, results: dict) -> None:
        with connect(address) as client:
            session = client.create(
                "forrester", "random_search", seed=seed, **SETTINGS
            )
            result = session.run()
            results[tag] = (session.run_id, result.best_objective)
            session.detach()

    results: dict = {}
    clients = [
        threading.Thread(target=drive, args=(f"client-{i}", 10 + i, results))
        for i in range(2)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    for tag, (run_id, best) in sorted(results.items()):
        print(f"[{tag}] run {run_id} done, best objective {best:.4f}")

    # -- act 3: kill a run mid-flight, resume it from the vault --------
    with connect(address) as client:
        session = client.create(
            "forrester", "random_search", seed=99, **SETTINGS
        )
        victim_id = session.run_id
        for x_unit, fidelity in session.suggest(4):
            session.observe(
                x_unit, fidelity,
                session.problem.evaluate_unit(x_unit, fidelity),
            )
        n_before = session.status()["n_evaluations"]
        print(f"[victim] {victim_id}: {n_before} evaluations acknowledged, "
              "client dies without detaching")
        # The connection simply drops — no goodbye. Every acknowledged
        # observation is already fsynced in the vault's event log.

    with connect(address) as client:
        # The orphaned session is still held server-side; release it so
        # the attach below truly resumes from the vault's event log.
        client.call("detach", run_id=victim_id)
        revived = client.attach(victim_id)
        n_after = revived.status()["n_evaluations"]
        assert n_after == n_before, "resume lost an acknowledged evaluation"
        print(f"[rescuer] re-attached {victim_id}: all {n_after} "
              "evaluations replayed, driving to completion")
        result = revived.run()
        print(f"[rescuer] finished, best objective {result.best_objective:.4f}")

        # -- act 4: queries + the posterior cache ----------------------
        runs = client.ls(status="done")
        print(f"[query] {len(runs)} finished runs in the vault")
        _, _, hit_cold = revived.predict([[0.25], [0.75]])
        _, _, hit_warm = revived.predict([[0.25], [0.75]])
        print(f"[query] predict served cold (cache hit: {hit_cold}), "
              f"then warm (cache hit: {hit_warm})")
        print(f"[query] cache stats: {client.cache_stats()}")
        revived.detach()
        client.shutdown()
    server.server_close()
    print("done.")


if __name__ == "__main__":
    main()
