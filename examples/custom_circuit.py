"""Bring your own circuit: wrap any repro.spice netlist as a Problem.

Demonstrates the extension path a downstream user takes: build a netlist
with :mod:`repro.spice`, define cheap/expensive evaluation modes, wrap it
in :class:`repro.problems.Problem`, and hand it to the multi-fidelity
optimizer.

The example sizes a diode peak rectifier: choose the smoothing capacitor
and series resistor to minimize output ripple while keeping the average
output voltage above a floor. The low fidelity simulates 3 source
periods, the high fidelity 15.

Run:  python examples/custom_circuit.py
"""

import numpy as np

from repro import MFBOptimizer
from repro.design import DesignSpace, Variable
from repro.problems import FIDELITY_HIGH, FIDELITY_LOW, Problem
from repro.spice import (
    Capacitor,
    Circuit,
    Diode,
    Resistor,
    SineWave,
    VoltageSource,
    simulate_transient,
)

SOURCE_HZ = 1e3
SIM_PERIODS = {FIDELITY_LOW: 3, FIDELITY_HIGH: 15}


def build_rectifier(r_series: float, c_smooth: float) -> Circuit:
    """Half-wave peak rectifier with an RC load."""
    circuit = Circuit("rectifier")
    circuit.add(
        VoltageSource("Vin", "in", "0", waveform=SineWave(0.0, 5.0, SOURCE_HZ))
    )
    circuit.add(Resistor("Rs", "in", "a", r_series))
    circuit.add(Diode("D1", "a", "out"))
    circuit.add(Capacitor("Cs", "out", "0", c_smooth))
    circuit.add(Resistor("RL", "out", "0", 1e3))
    return circuit


class RectifierProblem(Problem):
    """Minimize ripple subject to a minimum average output voltage."""

    name = "rectifier"

    def __init__(self):
        space = DesignSpace(
            [
                Variable("Rs", 1.0, 200.0, unit="ohm", log_scale=True),
                Variable("Cs", 1e-7, 1e-4, unit="F", log_scale=True),
            ]
        )
        super().__init__(
            space=space,
            n_constraints=1,
            fidelities=(FIDELITY_LOW, FIDELITY_HIGH),
            costs={FIDELITY_LOW: 0.2, FIDELITY_HIGH: 1.0},
        )

    def _evaluate(self, x, fidelity):
        r_series, c_smooth = float(x[0]), float(x[1])
        circuit = build_rectifier(r_series, c_smooth)
        period = 1.0 / SOURCE_HZ
        result = simulate_transient(
            circuit,
            t_stop=SIM_PERIODS[fidelity] * period,
            dt=period / 100,
            use_ic=True,
        )
        v_out = result.voltage("out").last_periods(SOURCE_HZ, 1)
        ripple = v_out.peak_to_peak()
        v_avg = v_out.average()
        # minimize ripple subject to v_avg > 3.5 V
        return ripple, np.array([3.5 - v_avg]), {
            "ripple": ripple, "v_avg": v_avg,
        }


def main(seed: int = 0) -> None:
    result = MFBOptimizer(
        RectifierProblem(),
        budget=15.0,
        n_init_low=8,
        n_init_high=4,
        msp_starts=40,
        msp_polish=2,
        n_restarts=1,
        seed=seed,
    ).run()
    print("rectifier design:")
    print(f"  Rs = {result.best_x[0]:.1f} ohm, Cs = {result.best_x[1]:.3g} F")
    print(
        f"  ripple = {result.metrics['ripple'] * 1e3:.1f} mVpp, "
        f"v_avg = {result.metrics['v_avg']:.2f} V "
        f"(constraint > 3.5 V), feasible: {result.feasible}"
    )
    print(
        f"  cost: {result.n_low} coarse + {result.n_high} fine "
        f"simulations = {result.equivalent_cost:.1f} equivalent"
    )


if __name__ == "__main__":
    main()
