"""Power-amplifier sizing — the paper's §5.1 experiment, pocket edition.

Maximizes the drain efficiency of a class-E power amplifier simulated on
the built-in MNA engine, subject to output-power and distortion
constraints, using the multi-fidelity optimizer: coarse evaluations run a
2-period transient, fine evaluations a 40-period one (the paper's
10 ns vs 200 ns protocol, 20x cost ratio).

Run:  python examples/power_amplifier.py        (~1-2 minutes)
"""

from repro import MFBOptimizer
from repro.circuits import PowerAmplifierProblem


def main(seed: int = 1) -> None:
    problem = PowerAmplifierProblem()
    print("design space:")
    for variable in problem.space.variables:
        print(
            f"  {variable.name:4s} in [{variable.lower:g}, "
            f"{variable.upper:g}] {variable.unit}"
        )

    result = MFBOptimizer(
        problem,
        budget=20.0,           # equivalent high-fidelity simulations
        n_init_low=10,
        n_init_high=5,
        msp_starts=60,
        msp_polish=2,
        n_restarts=1,
        gp_max_opt_iter=40,
        seed=seed,
    ).run()

    print("\nbest design found:")
    for name, value in problem.space.as_dict(result.best_x).items():
        print(f"  {name:4s} = {value:.4g}")
    print(
        f"\n  Eff  = {result.metrics['Eff']:.2f} %"
        f"\n  Pout = {result.metrics['Pout']:.2f} dBm "
        f"(constraint: > {problem.pout_min_dbm})"
        f"\n  thd  = {result.metrics['thd']:.2f} dB "
        f"(constraint: < {problem.thd_max_db})"
        f"\n  feasible: {result.feasible}"
        f"\n  cost: {result.n_low} coarse + {result.n_high} fine "
        f"= {result.equivalent_cost:.1f} equivalent fine simulations"
    )


if __name__ == "__main__":
    main()
