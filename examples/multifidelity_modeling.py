"""Multi-fidelity GP modeling without the optimization loop (paper Fig. 1).

Shows the NARGP fusion model (paper §3.1-3.2) head-to-head against a
plain single-fidelity GP and the linear Kennedy-O'Hagan AR1 model on the
Perdikaris pedagogical pair, where the high fidelity is a *nonlinear*
transform of the low fidelity: f_h(x) = (x - sqrt(2)) * f_l(x)^2.

Run:  python examples/multifidelity_modeling.py
"""

import numpy as np

from repro.gp import GPR
from repro.mf import AR1, NARGP
from repro.problems import pedagogical_high, pedagogical_low


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    x_low = np.sort(rng.random(50))[:, None]
    x_high = np.sort(rng.random(14))[:, None]
    y_low = pedagogical_low(x_low)
    y_high = pedagogical_high(x_high)
    grid = np.linspace(0, 1, 400)[:, None]
    truth = pedagogical_high(grid)

    nargp = NARGP(n_restarts=3, n_mc_samples=128).fit(
        x_low, y_low, x_high, y_high, rng=rng
    )
    nargp_mu, nargp_var = nargp.predict(grid, rng=rng)

    ar1 = AR1(n_restarts=3).fit(x_low, y_low, x_high, y_high, rng=rng)
    ar1_mu, _ = ar1.predict(grid)

    single = GPR().fit(x_high, y_high, n_restarts=3, rng=rng)
    single_mu, single_var = single.predict(grid)

    def rmse(mu):
        return float(np.sqrt(np.mean((mu - truth) ** 2)))

    print(f"training data: {len(x_low)} low-fidelity, {len(x_high)} high-fidelity")
    print(f"{'model':28s} {'RMSE':>8s}  {'mean posterior std':>18s}")
    print(
        f"{'NARGP (nonlinear fusion)':28s} {rmse(nargp_mu):8.4f}  "
        f"{float(np.mean(np.sqrt(nargp_var))):18.4f}"
    )
    print(
        f"{'AR1 (linear fusion)':28s} {rmse(ar1_mu):8.4f}  "
        f"{'rho=%.3f' % ar1.rho:>18s}"
    )
    print(
        f"{'single-fidelity GP':28s} {rmse(single_mu):8.4f}  "
        f"{float(np.mean(np.sqrt(single_var))):18.4f}"
    )
    print(
        "\nthe nonlinear map defeats the linear model; the fused posterior"
        "\ntracks the truth with a fraction of the single-fidelity error."
    )


if __name__ == "__main__":
    main()
