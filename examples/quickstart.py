"""Quickstart: multi-fidelity Bayesian optimization in ~30 lines.

Optimizes the classic Forrester function pair — an expensive "high
fidelity" and a cheap biased "low fidelity" — with the paper's
multi-fidelity BO (Algorithm 1) and compares against single-fidelity BO
(WEIBO) at the same equivalent-simulation budget.

Run:  python examples/quickstart.py

Migrating from the legacy ``run()`` API to sessions
---------------------------------------------------
``MFBOptimizer.run()`` still works and is what this example uses — it is
now a thin wrapper over the ask/tell session API, producing bit-for-bit
the same trajectory. The mapping is:

===============================================  ==========================
legacy                                           session equivalent
===============================================  ==========================
``MFBOptimizer(problem, ...).run()``             ``OptimizationSession(MFBOptimizer(problem, ...)).run()``
``optimizer.history`` during ``callback``        ``session.history`` (same object)
blocking loop, serial simulations                ``session.run(batch_size=k)`` with a ``ProcessPoolEvaluator``
no pause/resume                                  ``session.save(path)`` / ``OptimizationSession.resume(path, problem)``
===============================================  ==========================

See ``examples/ask_tell.py`` for driving the suggest/observe loop
yourself (external simulators, parallel batches, checkpointing).
"""

from repro import WEIBO, MFBOptimizer
from repro.problems import ForresterProblem


def main(seed: int = 0) -> None:
    budget = 15.0  # equivalent high-fidelity simulations

    mf_result = MFBOptimizer(
        ForresterProblem(),
        budget=budget,
        n_init_low=8,
        n_init_high=3,
        seed=seed,
    ).run()

    sf_result = WEIBO(
        ForresterProblem(),
        budget=int(budget),
        n_init=5,
        seed=seed,
    ).run()

    print("Forrester function, true minimum f(x*) = -6.0207 at x* = 0.7572")
    print(
        f"  multi-fidelity BO : f = {mf_result.best_objective:+.4f} at "
        f"x = {mf_result.best_x[0]:.4f}  "
        f"({mf_result.n_low} coarse + {mf_result.n_high} fine sims, "
        f"{mf_result.equivalent_cost:.1f} equivalent)"
    )
    print(
        f"  single-fidelity BO: f = {sf_result.best_objective:+.4f} at "
        f"x = {sf_result.best_x[0]:.4f}  "
        f"({sf_result.n_high} fine sims)"
    )
    gap_mf = abs(mf_result.best_objective - (-6.0207))
    gap_sf = abs(sf_result.best_objective - (-6.0207))
    print(f"  optimality gap: MF {gap_mf:.4f} vs SF {gap_sf:.4f}")


if __name__ == "__main__":
    main()
