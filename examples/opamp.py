"""Two-stage op-amp sizing — the frequency-domain benchmark scenario.

Sizes a two-stage Miller-compensated op-amp (input pair, mirror load,
second-stage widths, bias resistor, compensation capacitor) for minimum
static power subject to DC gain, unity-gain frequency and phase-margin
specs. Both fidelities run on the repo's own AC small-signal engine
(:mod:`repro.spice.ac`): the coarse evaluation sweeps 6x fewer frequency
points with a simplified device model, the fine evaluation runs the full
sweep at the nominal model.

Run:  python examples/opamp.py        (well under a minute)
"""

from repro import MFBOptimizer
from repro.circuits import OpAmpProblem


def main(seed: int = 0) -> None:
    problem = OpAmpProblem()
    result = MFBOptimizer(
        problem,
        budget=12.0,          # equivalent full-sweep simulations
        n_init_low=12,
        n_init_high=5,
        msp_starts=60,
        msp_polish=2,
        n_restarts=1,
        gp_max_opt_iter=40,
        n_mc_samples=10,
        seed=seed,
    ).run()

    print("best sizing:")
    for name, value in problem.space.as_dict(result.best_x).items():
        unit = problem.space[name].unit
        print(f"  {name:3s} = {value:10.4g} {unit}")
    print("\nbest design performance (fine fidelity):")
    print(f"  DC gain      = {result.metrics['gain_db']:6.1f} dB"
          f"   (spec > {problem.gain_min_db:g})")
    print(f"  UGF          = {result.metrics['ugf_mhz']:6.1f} MHz"
          f"  (spec > {problem.ugf_min_mhz:g})")
    print(f"  phase margin = {result.metrics['pm_deg']:6.1f} deg"
          f"  (spec > {problem.pm_min_deg:g})")
    print(f"  static power = {result.metrics['power_mw']:6.3f} mW"
          f"  (spec < {problem.power_max_mw:g})")
    print(
        f"\n  feasible: {result.feasible}"
        f"\n  cost: {result.n_low} coarse + {result.n_high} fine sweeps "
        f"= {result.equivalent_cost:.1f} equivalent simulations"
    )


if __name__ == "__main__":
    main()
