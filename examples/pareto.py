"""Multi-objective optimization: Pareto archive, hypervolume, EHVI.

Runs the multi-objective multi-fidelity optimizer on the two-fidelity
ZDT1 benchmark (constrained variant), prints the archived Pareto front
and the hypervolume-vs-cost curve, and shows the ParEGO scalarization
path on the same problem. The circuit-scale versions of this workflow
are the ``tab5`` scenarios: ``python -m repro.experiments tab5``.

Run:  python examples/pareto.py
"""

import numpy as np

from repro import MOMFBOptimizer, OptimizationSession
from repro.experiments import render_hv_curve
from repro.problems import ZDT1Problem

SETTINGS = dict(
    budget=8.0,
    n_init_low=8,
    n_init_high=3,
    msp_starts=30,
    msp_polish=1,
    n_restarts=1,
    n_mc_samples=8,
)


def run_ehvi(seed: int = 0) -> None:
    problem = ZDT1Problem(constrained=True)
    optimizer = MOMFBOptimizer(
        problem, acquisition="ehvi", seed=seed, **SETTINGS
    )
    OptimizationSession(optimizer).run()

    front = optimizer.archive.front()
    order = np.argsort(front[:, 0])
    print(f"EHVI Pareto front ({front.shape[0]} designs, "
          f"reference point {np.round(optimizer.ref_point, 3)}):")
    for f1, f2 in front[order]:
        print(f"  f1={f1:7.4f}  f2={f2:7.4f}")
    print()
    print(render_hv_curve(optimizer.hypervolume_trace(),
                          title="Hypervolume vs equivalent cost:"))
    assert front.shape[0] >= 1
    # ZDT1's constrained front satisfies f2 = 1 - sqrt(f1) at x2 = 0;
    # archived designs must at least respect the f1 >= 0.3 constraint.
    assert np.all(front[:, 0] >= 0.3 - 1e-9)


def run_parego(seed: int = 0) -> None:
    optimizer = MOMFBOptimizer(
        ZDT1Problem(constrained=True), acquisition="parego", seed=seed,
        **SETTINGS,
    )
    OptimizationSession(optimizer).run()
    front = optimizer.archive.front()
    print(f"\nParEGO front size: {front.shape[0]}, "
          f"final hypervolume {optimizer.hypervolume_trace()[-1, 1]:.4f}")
    assert front.shape[0] >= 1


if __name__ == "__main__":
    run_ehvi()
    run_parego()
    print("\nok")
